//! Figures 10, 11, 12: the oversubscription benchmark (Fig 4b topology).
//!
//! 2 leaves, 2 spines; the number of host pairs grows from 2 to 8, i.e.
//! oversubscription ratio 1:1 to 4:1. Paper: all schemes track Optimal as
//! congestion dominates, but ECMP underperforms at moderate load (flows
//! hashed together); Presto matches Optimal's latency and loss; MPTCP
//! shows tail latency from its higher loss; Presto & MPTCP are much
//! fairer than ECMP.

use presto_bench::{banner, base_seed, mean, new_table, print_cdf, runs, sim_duration, table::f, warmup_of};
use presto_simcore::SimTime;
use presto_testbed::{Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

fn main() {
    banner(
        "Figures 10-12",
        "oversubscription: tput / RTT / loss / fairness vs host pairs",
        "all track Optimal under heavy oversub; ECMP weak at moderate load",
    );
    let schemes = [
        SchemeSpec::ecmp(),
        SchemeSpec::mptcp(),
        SchemeSpec::presto(),
        SchemeSpec::optimal(),
    ];
    let duration = sim_duration();
    let mut tput_tbl = new_table(["pairs", "ratio", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut fair_tbl = new_table(["pairs", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut loss_tbl = new_table(["pairs", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut rtt_max = Vec::new();

    for pairs in [2usize, 4, 6, 8] {
        let mut tputs = Vec::new();
        let mut fairs = Vec::new();
        let mut losses = Vec::new();
        for scheme in &schemes {
            let mut pt = Vec::new();
            let mut pf = Vec::new();
            let mut pl = Vec::new();
            for run in 0..runs() {
                let mut sc = Scenario::oversubscription(scheme.clone(), base_seed() + run);
                sc.duration = duration;
                sc.warmup = warmup_of(duration);
                sc.flows = (0..pairs)
                    .map(|i| FlowSpec::elephant(i, 8 + i, SimTime::ZERO))
                    .collect();
                sc.probes = (0..pairs).map(|i| (i, 8 + i)).collect();
                let r = sc.run();
                pt.push(r.mean_elephant_tput());
                pf.push(r.fairness());
                pl.push(r.loss_rate * 100.0);
                if pairs == 8 && run == 0 {
                    rtt_max.push((scheme.name, r.rtt_ms.clone()));
                }
            }
            tputs.push(mean(&pt));
            fairs.push(mean(&pf));
            losses.push(mean(&pl));
        }
        tput_tbl.row([
            pairs.to_string(),
            format!("{}:1", pairs / 2),
            f(tputs[0], 2),
            f(tputs[1], 2),
            f(tputs[2], 2),
            f(tputs[3], 2),
        ]);
        fair_tbl.row([
            pairs.to_string(),
            f(fairs[0], 3),
            f(fairs[1], 3),
            f(fairs[2], 3),
            f(fairs[3], 3),
        ]);
        loss_tbl.row([
            pairs.to_string(),
            f(losses[0], 4),
            f(losses[1], 4),
            f(losses[2], 4),
            f(losses[3], 4),
        ]);
    }
    println!("\nFig 10 — avg flow throughput (Gbps) vs host pairs:");
    tput_tbl.print();
    println!("\nFig 11 — RTT CDF at 8 pairs / 4:1 oversubscription (ms):");
    for (name, rtt) in &rtt_max {
        print_cdf(name, rtt, "ms");
    }
    println!("\nFig 12a — loss rate (%) vs host pairs:");
    loss_tbl.print();
    println!("\nFig 12b — Jain fairness vs host pairs:");
    fair_tbl.print();
}
