//! Figures 10, 11, 12: the oversubscription benchmark (Fig 4b topology).
//!
//! 2 leaves, 2 spines; the number of host pairs grows from 2 to 8, i.e.
//! oversubscription ratio 1:1 to 4:1. Paper: all schemes track Optimal as
//! congestion dominates, but ECMP underperforms at moderate load (flows
//! hashed together); Presto matches Optimal's latency and loss; MPTCP
//! shows tail latency from its higher loss; Presto & MPTCP are much
//! fairer than ECMP.

use presto_bench::{
    banner, base_seed, mean, new_table, print_cdf, runs, sim_duration, table::f, warmup_of, workers,
};
use presto_simcore::SimTime;
use presto_testbed::{ParallelRunner, Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

fn main() {
    banner(
        "Figures 10-12",
        "oversubscription: tput / RTT / loss / fairness vs host pairs",
        "all track Optimal under heavy oversub; ECMP weak at moderate load",
    );
    let schemes = [
        SchemeSpec::ecmp(),
        SchemeSpec::mptcp(),
        SchemeSpec::presto(),
        SchemeSpec::optimal(),
    ];
    let duration = sim_duration();
    let mut tput_tbl = new_table(["pairs", "ratio", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut fair_tbl = new_table(["pairs", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut loss_tbl = new_table(["pairs", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut rtt_max = Vec::new();

    // Build the whole sweep up front, fan it out, then aggregate in order.
    let pairs_sweep = [2usize, 4, 6, 8];
    let mut scenarios = Vec::new();
    let mut meta = Vec::new();
    for (pi, &pairs) in pairs_sweep.iter().enumerate() {
        for (si, scheme) in schemes.iter().enumerate() {
            for run in 0..runs() {
                let sc = Scenario::builder(scheme.clone(), base_seed() + run)
                    .topology(presto_netsim::ClosSpec {
                        spines: 2,
                        leaves: 2,
                        hosts_per_leaf: 8,
                        ..presto_netsim::ClosSpec::default()
                    })
                    .duration(duration)
                    .warmup(warmup_of(duration))
                    .elephants(
                        (0..pairs)
                            .map(|i| FlowSpec::elephant(i, 8 + i, SimTime::ZERO))
                            .collect(),
                    )
                    .probes((0..pairs).map(|i| (i, 8 + i)).collect())
                    .build();
                scenarios.push(sc);
                meta.push((pi, si, run));
            }
        }
    }
    let reports = ParallelRunner::new(workers()).run(&scenarios);

    let empty = || vec![vec![Vec::new(); schemes.len()]; pairs_sweep.len()];
    let (mut tput, mut fair, mut loss) = (empty(), empty(), empty());
    for (&(pi, si, run), r) in meta.iter().zip(&reports) {
        tput[pi][si].push(r.mean_elephant_tput());
        fair[pi][si].push(r.fairness());
        loss[pi][si].push(r.loss_rate * 100.0);
        if pairs_sweep[pi] == 8 && run == 0 {
            rtt_max.push((schemes[si].name, r.rtt_ms.clone()));
        }
    }
    for (pi, &pairs) in pairs_sweep.iter().enumerate() {
        tput_tbl.row([
            pairs.to_string(),
            format!("{}:1", pairs / 2),
            f(mean(&tput[pi][0]), 2),
            f(mean(&tput[pi][1]), 2),
            f(mean(&tput[pi][2]), 2),
            f(mean(&tput[pi][3]), 2),
        ]);
        fair_tbl.row([
            pairs.to_string(),
            f(mean(&fair[pi][0]), 3),
            f(mean(&fair[pi][1]), 3),
            f(mean(&fair[pi][2]), 3),
            f(mean(&fair[pi][3]), 3),
        ]);
        loss_tbl.row([
            pairs.to_string(),
            f(mean(&loss[pi][0]), 4),
            f(mean(&loss[pi][1]), 4),
            f(mean(&loss[pi][2]), 4),
            f(mean(&loss[pi][3]), 4),
        ]);
    }
    println!("\nFig 10 — avg flow throughput (Gbps) vs host pairs:");
    tput_tbl.print();
    println!("\nFig 11 — RTT CDF at 8 pairs / 4:1 oversubscription (ms):");
    for (name, rtt) in &rtt_max {
        print_cdf(name, rtt, "ms");
    }
    println!("\nFig 12a — loss rate (%) vs host pairs:");
    loss_tbl.print();
    println!("\nFig 12b — Jain fairness vs host pairs:");
    fair_tbl.print();
}
