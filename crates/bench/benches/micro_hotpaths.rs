//! Criterion microbenchmarks of the simulator's hot paths.
//!
//! These measure the cost of the data structures every simulated packet
//! touches: the event queue, the GRO merge/flush cycle, Algorithm 1's
//! flowcell scheduler, TSO splitting, and the TCP receiver's out-of-order
//! store.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use presto_core::FlowcellScheduler;
use presto_endhost::{tso_split, EdgePolicy, PathTag, ReceiveOffload, TxSegment};
use presto_gro::{OfficialGro, PrestoGro};
use presto_netsim::{FlowKey, HostId, Mac, Packet, PacketKind, MSS};
use presto_simcore::{EventQueue, SimTime};
use presto_transport::TcpReceiver;

fn flow() -> FlowKey {
    FlowKey::new(HostId(0), HostId(1), 5, 80)
}

fn data_packet(i: u64) -> Packet {
    Packet {
        flow: flow(),
        src_host: HostId(0),
        dst_host: HostId(1),
        dst_mac: Mac::host(HostId(1)),
        flowcell: i / 45,
        kind: PacketKind::Data {
            seq: i * MSS as u64,
            len: MSS,
            retx: false,
        },
    }
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn bench_gro(c: &mut Criterion) {
    c.bench_function("presto_gro_inorder_batch64", |b| {
        b.iter(|| {
            let mut g = PrestoGro::new();
            let t = SimTime::from_micros(1);
            for i in 0..64 {
                g.on_packet(t, &data_packet(i));
            }
            black_box(g.flush(t).len())
        })
    });
    c.bench_function("official_gro_inorder_batch64", |b| {
        b.iter(|| {
            let mut g = OfficialGro::new();
            let t = SimTime::from_micros(1);
            for i in 0..64 {
                g.on_packet(t, &data_packet(i));
            }
            black_box(g.flush(t).len())
        })
    });
    c.bench_function("presto_gro_reordered_batch64", |b| {
        // Interleave two flowcells to exercise the multi-segment path.
        let order: Vec<u64> = (0..32).flat_map(|i| [i, 45 + i]).collect();
        b.iter(|| {
            let mut g = PrestoGro::new();
            let t = SimTime::from_micros(1);
            for &i in &order {
                g.on_packet(t, &data_packet(i));
            }
            black_box(g.flush(t).len())
        })
    });
}

fn bench_flowcell_scheduler(c: &mut Criterion) {
    c.bench_function("flowcell_assign_64kb", |b| {
        let mut s = FlowcellScheduler::new();
        s.set_labels(HostId(1), (0..4).map(|t| Mac::shadow(HostId(1), t)).collect());
        b.iter(|| black_box(s.assign(SimTime::ZERO, flow(), 64 * 1024, false)))
    });
}

fn bench_tso(c: &mut Criterion) {
    c.bench_function("tso_split_64kb", |b| {
        let seg = TxSegment {
            flow: flow(),
            seq: 0,
            len: 64 * 1024,
            retx: false,
            tag: PathTag {
                dst_mac: Mac::shadow(HostId(1), 2),
                flowcell: 9,
            },
        };
        b.iter(|| black_box(tso_split(seg).len()))
    });
}

fn bench_receiver(c: &mut Criterion) {
    c.bench_function("tcp_receiver_inorder_100", |b| {
        b.iter(|| {
            let mut r = TcpReceiver::new();
            for i in 0..100u64 {
                r.on_segment(i * 1460, 1460);
            }
            black_box(r.rcv_nxt())
        })
    });
    c.bench_function("tcp_receiver_reordered_100", |b| {
        let order: Vec<u64> = (0..50).flat_map(|i| [i + 50, i]).collect();
        b.iter(|| {
            let mut r = TcpReceiver::new();
            for &i in &order {
                r.on_segment(i * 1460, 1460);
            }
            black_box(r.rcv_nxt())
        })
    });
}

criterion_group!(
    name = hotpaths;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_event_queue, bench_gro, bench_flowcell_scheduler, bench_tso, bench_receiver
);
criterion_main!(hotpaths);
