//! Criterion microbenchmarks of the simulator's hot paths.
//!
//! These measure the cost of the data structures every simulated packet
//! touches: the event queue, the GRO merge/flush cycle, Algorithm 1's
//! flowcell scheduler, TSO splitting, and the TCP receiver's out-of-order
//! store.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use presto_core::FlowcellScheduler;
use presto_endhost::{tso_split, tso_split_into, EdgePolicy, PathTag, ReceiveOffload, TxSegment};
use presto_gro::{OfficialGro, PrestoGro};
use presto_netsim::{FlowKey, HostId, Mac, Packet, PacketKind, PacketPool, MSS};
use presto_simcore::{EventQueue, HeapEventQueue, SimTime};
use presto_transport::TcpReceiver;

fn flow() -> FlowKey {
    FlowKey::new(HostId(0), HostId(1), 5, 80)
}

fn data_packet(i: u64) -> Packet {
    Packet {
        flow: flow(),
        src_host: HostId(0),
        dst_host: HostId(1),
        dst_mac: Mac::host(HostId(1)),
        flowcell: i / 45,
        ce: false,
        kind: PacketKind::Data {
            seq: i * MSS as u64,
            len: MSS,
            retx: false,
        },
    }
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

/// Push `times` in order, then pop everything — one bench body shared by
/// the calendar [`EventQueue`] and the reference [`HeapEventQueue`].
macro_rules! queue_bench {
    ($c:expr, $name:expr, $times:expr, $ty:ty) => {
        $c.bench_function($name, |b| {
            b.iter(|| {
                let mut q: $ty = <$ty>::new();
                for (i, &t) in $times.iter().enumerate() {
                    q.push(t, i as u64);
                }
                let mut sum = 0u64;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                black_box(sum)
            })
        });
    };
}

fn bench_queue_head_to_head(c: &mut Criterion) {
    // Uniform near-horizon timers: the common case (packet serializations,
    // coalescing timers) — everything lands in the calendar wheel.
    let uniform: Vec<SimTime> = (0..2000u64)
        .map(|i| SimTime::from_nanos((i * 7919) % 100_000))
        .collect();
    queue_bench!(c, "queue_uniform_2k_calendar", uniform, EventQueue<u64>);
    queue_bench!(c, "queue_uniform_2k_heap", uniform, HeapEventQueue<u64>);

    // Bimodal near/far: 80% within 100 µs, 20% RTO-like timers 10-50 ms
    // out — exercises the overflow tier and its migration.
    let bimodal: Vec<SimTime> = (0..2000u64)
        .map(|i| {
            if i % 5 == 4 {
                SimTime::from_nanos(10_000_000 + (i * 104_729) % 40_000_000)
            } else {
                SimTime::from_nanos((i * 7919) % 100_000)
            }
        })
        .collect();
    queue_bench!(c, "queue_bimodal_2k_calendar", bimodal, EventQueue<u64>);
    queue_bench!(c, "queue_bimodal_2k_heap", bimodal, HeapEventQueue<u64>);

    // Same-instant burst: many events at few distinct times (incast
    // arrivals) — stresses the (time, seq) FIFO tiebreak path.
    let burst: Vec<SimTime> = (0..2000u64)
        .map(|i| SimTime::from_nanos((i / 250) * 4096))
        .collect();
    queue_bench!(c, "queue_burst_2k_calendar", burst, EventQueue<u64>);
    queue_bench!(c, "queue_burst_2k_heap", burst, HeapEventQueue<u64>);
}

fn bench_gro(c: &mut Criterion) {
    c.bench_function("presto_gro_inorder_batch64", |b| {
        b.iter(|| {
            let mut g = PrestoGro::new();
            let t = SimTime::from_micros(1);
            for i in 0..64 {
                g.on_packet(t, &data_packet(i));
            }
            black_box(g.flush(t).len())
        })
    });
    c.bench_function("official_gro_inorder_batch64", |b| {
        b.iter(|| {
            let mut g = OfficialGro::new();
            let t = SimTime::from_micros(1);
            for i in 0..64 {
                g.on_packet(t, &data_packet(i));
            }
            black_box(g.flush(t).len())
        })
    });
    c.bench_function("presto_gro_reordered_batch64", |b| {
        // Interleave two flowcells to exercise the multi-segment path.
        let order: Vec<u64> = (0..32).flat_map(|i| [i, 45 + i]).collect();
        b.iter(|| {
            let mut g = PrestoGro::new();
            let t = SimTime::from_micros(1);
            for &i in &order {
                g.on_packet(t, &data_packet(i));
            }
            black_box(g.flush(t).len())
        })
    });
}

fn bench_flowcell_scheduler(c: &mut Criterion) {
    c.bench_function("flowcell_assign_64kb", |b| {
        let mut s = FlowcellScheduler::new();
        s.set_labels(
            HostId(1),
            (0..4).map(|t| Mac::shadow(HostId(1), t)).collect(),
        );
        b.iter(|| black_box(s.assign(SimTime::ZERO, flow(), 64 * 1024, false)))
    });
}

fn bench_tso(c: &mut Criterion) {
    c.bench_function("tso_split_64kb", |b| {
        let seg = TxSegment {
            flow: flow(),
            seq: 0,
            len: 64 * 1024,
            retx: false,
            tag: PathTag {
                dst_mac: Mac::shadow(HostId(1), 2),
                flowcell: 9,
            },
        };
        b.iter(|| black_box(tso_split(seg).len()))
    });
    // Same split through the packet pool: the hot path reuses one warm
    // allocation instead of a fresh 45-packet Vec per segment.
    c.bench_function("tso_split_64kb_pooled", |b| {
        let seg = TxSegment {
            flow: flow(),
            seq: 0,
            len: 64 * 1024,
            retx: false,
            tag: PathTag {
                dst_mac: Mac::shadow(HostId(1), 2),
                flowcell: 9,
            },
        };
        let mut pool = PacketPool::new();
        b.iter(|| {
            let mut buf = pool.take();
            tso_split_into(seg, &mut buf);
            let n = buf.len();
            pool.put(buf);
            black_box(n)
        })
    });
}

fn bench_receiver(c: &mut Criterion) {
    c.bench_function("tcp_receiver_inorder_100", |b| {
        b.iter(|| {
            let mut r = TcpReceiver::new();
            for i in 0..100u64 {
                r.on_segment(i * 1460, 1460);
            }
            black_box(r.rcv_nxt())
        })
    });
    c.bench_function("tcp_receiver_reordered_100", |b| {
        let order: Vec<u64> = (0..50).flat_map(|i| [i + 50, i]).collect();
        b.iter(|| {
            let mut r = TcpReceiver::new();
            for &i in &order {
                r.on_segment(i * 1460, 1460);
            }
            black_box(r.rcv_nxt())
        })
    });
}

criterion_group!(
    name = hotpaths;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_event_queue, bench_queue_head_to_head, bench_gro, bench_flowcell_scheduler, bench_tso, bench_receiver
);
criterion_main!(hotpaths);
