//! §2.1's motivation: why not per-packet spraying?
//!
//! The paper argues per-packet schemes (RPS, DRB) cannot scale to 10+ Gbps
//! at the host: they forgo TSO ("with TSO disabled, a host ... can only
//! achieve around 5.5 Gbps") and flood the receiver with reordering. This
//! bench runs per-packet spraying with TSO disabled against Presto on the
//! stride workload and reports throughput, receiver CPU, segment sizes and
//! reordering exposure.

use presto_bench::{banner, base_seed, new_table, sim_duration, table::f, warmup_of};
use presto_simcore::SimDuration;
use presto_testbed::{stride_elephants, Scenario, SchemeSpec};

fn main() {
    banner(
        "Motivation (§2.1)",
        "per-packet spraying w/o TSO vs Presto, stride workload",
        "TSO-less per-packet load balancing is CPU-bound near ~5 Gbps and reorders heavily",
    );
    let mut tbl = new_table([
        "scheme",
        "tput(Gbps)",
        "rx cpu(%)",
        "seg p50(B)",
        "tcp ooo",
        "retx",
    ]);
    for scheme in [SchemeSpec::per_packet(), SchemeSpec::presto()] {
        let name = scheme.name;
        let r = Scenario::builder(scheme, base_seed())
            .duration(sim_duration())
            .warmup(warmup_of(sim_duration()))
            .elephants(stride_elephants(16, 8))
            .cpu_sample(SimDuration::from_millis(2))
            .build()
            .run();
        let mut segs = r.segment_bytes.clone();
        tbl.row([
            name.to_string(),
            f(r.mean_elephant_tput(), 2),
            f(r.mean_cpu_util(), 1),
            f(segs.percentile(50.0).unwrap_or(0.0), 0),
            r.tcp_ooo_segments.to_string(),
            r.retransmissions.to_string(),
        ]);
    }
    tbl.print();
    println!("\nReading: the per-packet scheme's MTU-sized skbs defeat both TSO and");
    println!("GRO merging, so the receive core saturates near 5 Gbps — the reason");
    println!("Presto sprays 64 KB flowcells instead of packets.");
}
