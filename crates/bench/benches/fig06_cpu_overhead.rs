//! Figure 6: Presto's receiver CPU overhead.
//!
//! The paper samples receiver CPU while a stride workload runs at line
//! rate: Presto (modified GRO, reordered input) against official GRO fed
//! by a single non-blocking switch (no reordering). Both sustain 9.3 Gbps;
//! Presto costs ~6% more CPU on average.

use presto_bench::{banner, base_seed, new_table, sim_duration, table::f, warmup_of};
use presto_metrics::TimeSeries;
use presto_simcore::SimDuration;
use presto_testbed::{stride_elephants, Report, Scenario, SchemeSpec};

fn receiver_cpu_series(r: &Report) -> Vec<(u32, &TimeSeries)> {
    let mut v: Vec<(u32, &TimeSeries)> = r
        .cpu_util
        .iter()
        .filter(|(_, ts)| ts.mean().unwrap_or(0.0) > 5.0)
        .map(|(&h, ts)| (h, ts))
        .collect();
    v.sort_by_key(|&(h, _)| h);
    v
}

fn main() {
    banner(
        "Figure 6",
        "receiver CPU usage time series, stride workload",
        "Presto GRO averages ~6% more CPU than official GRO at 9.3 Gbps",
    );
    let mut means = Vec::new();
    for (label, scheme) in [
        ("Official (non-blocking)", SchemeSpec::optimal()),
        ("Presto", SchemeSpec::presto()),
    ] {
        let duration = sim_duration() * 2;
        let r = Scenario::builder(scheme, base_seed())
            .duration(duration)
            .warmup(warmup_of(duration))
            .elephants(stride_elephants(16, 8))
            .cpu_sample(SimDuration::from_millis(2))
            .build()
            .run();
        let series = receiver_cpu_series(&r);
        // Print one representative receiver's series (the figure's shape).
        if let Some((h, ts)) = series.first() {
            let pts: Vec<String> = ts
                .rebucket(0.01)
                .iter()
                .map(|(t, v)| format!("{:.0}ms:{v:.0}%", t * 1e3))
                .collect();
            println!("  {label} host{h}: {}", pts.join(" "));
        }
        let mean = r.mean_cpu_util();
        println!(
            "  {label}: mean receiver CPU {:.1}%  tput {:.2} Gbps",
            mean,
            r.mean_elephant_tput()
        );
        means.push((label, mean, r.mean_elephant_tput()));
    }
    println!();
    let mut tbl = new_table(["scheme", "cpu(%)", "tput(Gbps)"]);
    for (label, cpu, tput) in &means {
        tbl.row([label.to_string(), f(*cpu, 1), f(*tput, 2)]);
    }
    tbl.print();
    if means.len() == 2 {
        println!(
            "\n  Presto CPU overhead vs official: +{:.1} points (paper: ~+6)",
            means[1].1 - means[0].1
        );
    }
}
