//! Extension: γ > 1 parallel links per (leaf, spine) pair.
//!
//! §3.1: "When there are γ links between each spine and leaf switch ...
//! the controller can allocate γ spanning trees per spine switch." This
//! bench builds a 2-leaf fabric where the same aggregate capacity is
//! provided either as many spines × 1 link or fewer spines × parallel
//! links, and verifies Presto's controller exploits both identically
//! (ν·γ disjoint trees, near-optimal throughput) while per-flow ECMP
//! still collides.

use presto_bench::{banner, base_seed, new_table, sim_duration, table::f, warmup_of};
use presto_netsim::ClosSpec;
use presto_simcore::SimTime;
use presto_testbed::{Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

fn run(scheme: SchemeSpec, spines: usize, gamma: usize, seed: u64) -> presto_testbed::Report {
    let paths = spines * gamma;
    Scenario::builder(scheme, seed)
        .topology(ClosSpec {
            spines,
            leaves: 2,
            hosts_per_leaf: 8,
            links_per_pair: gamma,
            ..ClosSpec::default()
        })
        .duration(sim_duration())
        .warmup(warmup_of(sim_duration()))
        .elephants(
            (0..paths.min(8))
                .map(|i| FlowSpec::elephant(i, 8 + i, SimTime::ZERO))
                .collect(),
        )
        .build()
        .run()
}

fn main() {
    banner(
        "Extension: parallel links (gamma > 1)",
        "nu spines x gamma links: controller allocates nu*gamma trees",
        "Presto scales with total path count regardless of how it is provided",
    );
    let mut tbl = new_table(["layout", "paths", "scheme", "tput(Gbps)", "fairness"]);
    for &(spines, gamma) in &[(8usize, 1usize), (4, 2), (2, 4), (2, 2), (4, 1)] {
        for scheme in [SchemeSpec::ecmp(), SchemeSpec::presto()] {
            let name = scheme.name;
            let r = run(scheme, spines, gamma, base_seed());
            tbl.row([
                format!("{spines}sp x {gamma}ln"),
                (spines * gamma).to_string(),
                name.to_string(),
                f(r.mean_elephant_tput(), 2),
                f(r.fairness(), 3),
            ]);
        }
    }
    tbl.print();
    println!("\nReading: rows with equal `paths` should behave alike for Presto —");
    println!("the spanning-tree abstraction hides whether multipath capacity comes");
    println!("from more spines or parallel cables.");
}
