//! Extension: published workload mixes (web search & data mining).
//!
//! The paper's trace-driven experiment uses one measured mix; the DCTCP
//! "web search" and VL2 "data mining" CDFs are the other two canonical
//! datacenter workloads. This bench replays both through Presto and ECMP
//! to show the Table 1 conclusions are not an artifact of one size mix.

use presto_bench::{banner, base_seed, new_table, sim_duration, table::f, warmup_of};
use presto_simcore::rng::DetRng;
use presto_simcore::{SimDuration, SimTime};
use presto_testbed::{Scenario, SchemeSpec};
use presto_workloads::{data_mining, web_search, EmpiricalCdf, FlowSpec};

fn mix_flows(
    cdf: &EmpiricalCdf,
    seed: u64,
    horizon: SimTime,
    load_gap: SimDuration,
) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for src in 0..16usize {
        let mut rng = DetRng::new(seed ^ 0x317).for_stream(src as u64);
        let mut at = SimTime::ZERO + SimDuration::from_secs_f64(rng.exp(load_gap.as_secs_f64()));
        while at < horizon {
            let dst = loop {
                let d = rng.gen_range(16) as usize;
                if d / 4 != src / 4 {
                    break d;
                }
            };
            // Truncate elephants so short runs finish a useful fraction.
            let bytes = (cdf.sample(&mut rng) as u64).clamp(500, 20_000_000);
            flows.push(FlowSpec {
                src,
                dst,
                start: at,
                bytes: Some(bytes),
                measure_fct: bytes < 100_000,
            });
            at += SimDuration::from_secs_f64(rng.exp(load_gap.as_secs_f64()));
        }
    }
    flows
}

fn main() {
    banner(
        "Extension: workload mixes",
        "web-search (DCTCP) and data-mining (VL2) CDFs through the fabric",
        "Presto's mice-tail and elephant wins should hold across size mixes",
    );
    let duration = sim_duration() * 4;
    let horizon = SimTime::ZERO + duration;
    let mut tbl = new_table([
        "mix",
        "scheme",
        "mice",
        "fct p50(ms)",
        "fct p99(ms)",
        "eleph(Gbps)",
        "loss(%)",
    ]);
    for (mix_name, cdf, gap_ms) in [
        ("web-search", web_search(), 3u64),
        ("data-mining", data_mining(), 4),
    ] {
        for scheme in [SchemeSpec::ecmp(), SchemeSpec::presto()] {
            let name = scheme.name;
            let r = Scenario::builder(scheme, base_seed())
                .duration(duration)
                .warmup(warmup_of(duration))
                .flows(mix_flows(
                    &cdf,
                    base_seed(),
                    horizon,
                    SimDuration::from_millis(gap_ms),
                ))
                .build()
                .run();
            let mut fct = r.mice_fct_ms.clone();
            tbl.row([
                mix_name.to_string(),
                name.to_string(),
                fct.len().to_string(),
                f(fct.percentile(50.0).unwrap_or(0.0), 2),
                f(fct.percentile(99.0).unwrap_or(0.0), 2),
                f(r.mean_elephant_tput(), 2),
                f(r.loss_rate * 100.0, 3),
            ]);
        }
    }
    tbl.print();
}
