//! Extension: published workload mixes (web search & data mining).
//!
//! The paper's trace-driven experiment uses one measured mix; the DCTCP
//! "web search" and VL2 "data mining" CDFs are the other two canonical
//! datacenter workloads. This bench replays both through Presto and ECMP
//! to show the Table 1 conclusions are not an artifact of one size mix.
//!
//! Since PR 5 this harness is a `presto-lab` campaign rather than a
//! hand-rolled loop: the grid (scheme × mix) expands declaratively, runs
//! through the campaign runner, and is cached in a content-addressed
//! store under `target/lab-store` — re-running with the same
//! `PRESTO_SIM_MS` / `PRESTO_SEED` answers every point from the cache.
//! Set `PRESTO_LAB_STORE` to relocate (or wipe the directory to force
//! re-execution).

use presto_bench::{banner, base_seed, new_table, sim_duration, table::f, warmup_of, workers};
use presto_lab::{Campaign, LabRunner, ResultsStore, RunOptions, WorkloadId};

fn main() {
    banner(
        "Extension: workload mixes",
        "web-search (DCTCP) and data-mining (VL2) CDFs through the fabric",
        "Presto's mice-tail and elephant wins should hold across size mixes",
    );
    let duration = sim_duration() * 4;

    // The old hand-rolled double loop, as a declarative grid. The
    // campaign name carries the knobs that change the scenarios, so each
    // (duration, seed) sweep caches independently.
    let mut campaign = Campaign::new(format!(
        "ext_workload_mix_{}ms_s{}",
        duration.as_millis_f64() as u64,
        base_seed()
    ));
    campaign.duration = duration;
    campaign.warmup = warmup_of(duration);
    campaign.schemes = vec!["ecmp".parse().unwrap(), "presto".parse().unwrap()];
    campaign.workloads = vec![WorkloadId::WebSearch(3), WorkloadId::DataMining(4)];
    campaign.seeds = vec![base_seed()];

    let store_dir =
        std::env::var("PRESTO_LAB_STORE").unwrap_or_else(|_| "target/lab-store".to_string());
    let store = ResultsStore::open(store_dir).expect("open results store");
    let opts = RunOptions {
        workers: workers(),
        ..RunOptions::default()
    };
    let outcome = LabRunner::new(&store, opts)
        .run(&campaign)
        .expect("campaign failed");
    if outcome.cached > 0 {
        println!(
            "({} of {} points answered from the store)",
            outcome.cached,
            outcome.rows.len()
        );
    }

    let mut tbl = new_table([
        "mix",
        "scheme",
        "mice",
        "fct p50(ms)",
        "fct p99(ms)",
        "eleph(Gbps)",
        "loss(%)",
    ]);
    // Rows come back in grid order (scheme outermost, then workload);
    // re-group by mix to keep the table's historical layout.
    for workload in &campaign.workloads {
        let mix_name = match workload {
            WorkloadId::WebSearch(_) => "web-search",
            WorkloadId::DataMining(_) => "data-mining",
            other => unreachable!("unexpected workload {other}"),
        };
        for row in &outcome.rows {
            if !row.label.contains(&format!("/{workload}/")) {
                continue;
            }
            let scheme = row.label.split('/').next().unwrap_or("?");
            tbl.row([
                mix_name.to_string(),
                scheme.to_string(),
                row.fct_ms.count.to_string(),
                f(row.fct_ms.p50, 2),
                f(row.fct_ms.p99, 2),
                f(row.goodput_gbps, 2),
                f(row.loss_rate * 100.0, 3),
            ]);
        }
    }
    tbl.print();
}
