//! Figure 13: flowlet switching (100 µs and 500 µs timers) vs Presto.
//!
//! Stride workload on the Fig 3 testbed. Paper: throughputs 4.3 / 7.6 /
//! 9.3 Gbps for 100 µs / 500 µs / Presto — the 100 µs timer reorders
//! 13-29% of packets and collapses throughput, the 500 µs timer avoids
//! reordering but collides on huge flowlets; Presto cuts the 99.9th
//! percentile RTT by 2-3.6x relative to both.

use presto_bench::{banner, base_seed, new_table, print_cdf, sim_duration, table::f, warmup_of};
use presto_simcore::SimDuration;
use presto_testbed::{stride_elephants, Scenario, SchemeSpec};

fn main() {
    banner(
        "Figure 13",
        "flowlet switching vs Presto, stride workload",
        "tputs 4.3 / 7.6 / 9.3 Gbps; Presto's p99.9 RTT 2-3.6x lower",
    );
    let mut tbl = new_table([
        "scheme",
        "tput(Gbps)",
        "rtt p50(ms)",
        "rtt p99.9(ms)",
        "reordered(%)",
    ]);
    let mut rtts = Vec::new();
    for scheme in [
        SchemeSpec::flowlet(SimDuration::from_micros(100)),
        SchemeSpec::flowlet(SimDuration::from_micros(500)),
        SchemeSpec::presto(),
    ] {
        let name = scheme.name;
        let r = Scenario::builder(scheme, base_seed())
            .duration(sim_duration())
            .warmup(warmup_of(sim_duration()))
            .elephants(stride_elephants(16, 8))
            .probes((0..16).map(|i| (i, (i + 8) % 16)).collect())
            .collect_reorder(true)
            .build()
            .run();
        let mut rtt = r.rtt_ms.clone();
        tbl.row([
            name.to_string(),
            f(r.mean_elephant_tput(), 2),
            f(rtt.percentile(50.0).unwrap_or(0.0), 3),
            f(rtt.percentile(99.9).unwrap_or(0.0), 3),
            f(r.reordered_fraction * 100.0, 2),
        ]);
        rtts.push((name, r.rtt_ms));
    }
    println!("\nRTT CDFs (ms):");
    for (name, rtt) in &rtts {
        print_cdf(name, rtt, "ms");
    }
    println!();
    tbl.print();
}
