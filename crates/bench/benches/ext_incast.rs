//! Extension experiment (beyond the paper): incast.
//!
//! Partition-aggregate services fan many synchronized responses into one
//! receiver. Load balancing cannot remove the last-hop bottleneck, so the
//! interesting question is whether Presto *hurts* incast (spraying bursts
//! over all spines concentrates them at the receiver's leaf simultaneously)
//! and how much a shared-buffer ToR absorbs. Expectation: all schemes
//! converge at the receiver downlink; Presto neither fixes nor
//! significantly worsens incast; the shared buffer soaks bursts that
//! static per-port drop-tail would drop.

use presto_bench::{banner, base_seed, new_table, table::f};
use presto_simcore::{SimDuration, SimTime};
use presto_testbed::{Scenario, SchemeSpec};
use presto_workloads::patterns::incast_senders;
use presto_workloads::FlowSpec;

fn run(scheme: SchemeSpec, fan_in: usize, shared: bool, seed: u64) -> presto_testbed::Report {
    // Synchronized 256 KB responses to host 0 every 10 ms.
    let receiver = 0usize;
    let mut flows = Vec::new();
    for wave in 0..10u64 {
        let at = SimTime::ZERO + SimDuration::from_millis(10 + wave * 10);
        for &s in &incast_senders(16, receiver, fan_in) {
            flows.push(FlowSpec::mouse(s, receiver, at, 256 * 1024));
        }
    }
    let mut b = Scenario::builder(scheme, seed)
        .duration(SimDuration::from_millis(120))
        .warmup(SimDuration::from_millis(10))
        .flows(flows);
    if shared {
        b = b.topology(presto_netsim::ClosSpec {
            shared_buffer: Some((4 * 1024 * 1024, 1.0)),
            ..presto_netsim::ClosSpec::default()
        });
    }
    b.build().run()
}

fn main() {
    banner(
        "Extension: incast",
        "synchronized fan-in to one receiver (not a paper experiment)",
        "all schemes bottleneck at the last hop; shared buffers absorb bursts",
    );
    let mut tbl = new_table([
        "fan-in",
        "buffering",
        "scheme",
        "fct p50(ms)",
        "fct p99(ms)",
        "loss(%)",
        "timeouts",
    ]);
    for &fan_in in &[4usize, 8, 15] {
        for &shared in &[false, true] {
            for scheme in [SchemeSpec::ecmp(), SchemeSpec::presto()] {
                let name = scheme.name;
                let single = scheme.single_switch;
                if single && shared {
                    continue;
                }
                let r = run(scheme, fan_in, shared, base_seed());
                let mut fct = r.mice_fct_ms.clone();
                tbl.row([
                    fan_in.to_string(),
                    if shared { "shared-4MB" } else { "droptail-1MB" }.to_string(),
                    name.to_string(),
                    f(fct.percentile(50.0).unwrap_or(0.0), 2),
                    f(fct.percentile(99.0).unwrap_or(0.0), 2),
                    f(r.loss_rate * 100.0, 3),
                    r.timeouts.to_string(),
                ]);
            }
        }
    }
    tbl.print();
    println!("\nReading: FCT grows with fan-in for every scheme (last-hop bound);");
    println!("Presto tracks ECMP — spraying neither fixes nor breaks incast; the");
    println!("shared-buffer ToR absorbs bursts that drop-tail ports would cut.");
}
