//! Ablation: flowcell size sweep.
//!
//! §2.1 argues 64 KB is the sweet spot: it matches the TSO limit (so the
//! NIC does the per-packet work), is small enough for fine-grained
//! balancing, and big enough that mice stay in one cell. This sweep runs
//! stride with 16 KB – 256 KB cells. Smaller cells balance finer but
//! reorder more (more boundaries); larger cells approach flowlet-style
//! coarseness.

use presto_bench::{banner, base_seed, new_table, sim_duration, table::f, warmup_of};
use presto_testbed::{stride_elephants, Scenario, SchemeSpec};

fn main() {
    banner(
        "Ablation",
        "flowcell size sweep (Presto, stride workload)",
        "(design-choice ablation; the paper fixes 64 KB = max TSO, §2.1)",
    );
    let mut tbl = new_table([
        "flowcell",
        "tput(Gbps)",
        "fairness",
        "cells",
        "masked",
        "fires",
        "retx",
    ]);
    for kb in [16u64, 32, 64, 128, 256] {
        let mut scheme = SchemeSpec::presto();
        scheme.flowcell_bytes = kb * 1024;
        let r = Scenario::builder(scheme, base_seed())
            .duration(sim_duration())
            .warmup(warmup_of(sim_duration()))
            .elephants(stride_elephants(16, 8))
            .build()
            .run();
        tbl.row([
            format!("{kb}KB"),
            f(r.mean_elephant_tput(), 2),
            f(r.fairness(), 3),
            r.flowcells.to_string(),
            r.gro_reorders_masked.to_string(),
            r.gro_timeout_fires.to_string(),
            r.retransmissions.to_string(),
        ]);
    }
    tbl.print();
    println!("\nNote: cells larger than 64 KB exceed what one TSO segment can carry;");
    println!("the sender model still forms them from consecutive skbs, but a real");
    println!("NIC gains nothing past the TSO limit — the paper's reason to stop at 64 KB.");
}
