//! Figures 15 & 16: synthetic workloads on the Fig 3 testbed.
//!
//! Fig 15 — elephant throughput per scheme over shuffle, random, stride,
//! random-bijection. Paper: Presto within 1-4% of Optimal everywhere;
//! +38-72% over ECMP and +17-28% over MPTCP on the non-shuffle workloads;
//! shuffle is receiver-bound, so everyone ties.
//!
//! Fig 16 — mice (50 KB) flow completion time CDFs for stride, bijection
//! and shuffle. Paper: Presto's 99.9th percentile stays within 350 µs of
//! Optimal on the non-blocking patterns, while ECMP's is >7.5x worse and
//! MPTCP hits retransmission timeouts.
//!
//! Scaling: shuffle transfers are 2 MB (1 GB in the paper) and mice fire
//! every few ms instead of every 100 ms so short runs gather samples —
//! each mouse is still an independent 50 KB connection.

use presto_bench::{
    banner, base_seed, new_table, print_cdf, sim_duration, table::f, warmup_of, workers,
};
use presto_simcore::SimDuration;
use presto_testbed::{
    bijection_elephants, random_elephants, stride_elephants, MiceSpec, ParallelRunner, Scenario,
    SchemeSpec, ShuffleSpec,
};

fn mice_on_stride(n: usize) -> Vec<MiceSpec> {
    (0..n)
        .map(|i| MiceSpec {
            src: i,
            dst: (i + 8) % n,
            bytes: 50_000,
            interval: SimDuration::from_millis(4),
        })
        .collect()
}

fn main() {
    banner(
        "Figures 15-16",
        "elephant tput + mice FCT over shuffle/random/stride/bijection",
        "Presto within 1-4% of Optimal; >ECMP by 38-72%; mice tails near Optimal",
    );
    let schemes = [
        SchemeSpec::ecmp(),
        SchemeSpec::mptcp(),
        SchemeSpec::presto(),
        SchemeSpec::optimal(),
    ];
    let workloads = ["shuffle", "random", "stride", "bijection"];
    let mut tput_tbl = new_table(["workload", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut fct_cdfs: Vec<(String, presto_metrics::Samples)> = Vec::new();
    let mut fct_tbl = new_table([
        "workload",
        "scheme",
        "p50(ms)",
        "p99(ms)",
        "p99.9(ms)",
        "timeouts",
    ]);

    // One scenario per workload × scheme cell, fanned out in parallel;
    // reports come back in build order, so the tables read identically.
    let mut scenarios = Vec::new();
    for wl in workloads {
        for scheme in &schemes {
            let duration = sim_duration() * 2;
            let mut b = Scenario::builder(scheme.clone(), base_seed())
                .duration(duration)
                .warmup(warmup_of(duration));
            b = match wl {
                "shuffle" => b.shuffle(ShuffleSpec {
                    bytes: 2 * 1024 * 1024,
                    concurrency: 2,
                }),
                "random" => b.elephants(random_elephants(16, 4, base_seed())),
                "stride" => b.elephants(stride_elephants(16, 8)),
                _ => b.elephants(bijection_elephants(16, 4, base_seed())),
            };
            // Mice between stride pairs, as the paper measures per workload.
            if wl != "random" {
                b = b.mice(mice_on_stride(16));
            }
            scenarios.push(b.build());
        }
    }
    let mut reports = ParallelRunner::new(workers()).run(&scenarios).into_iter();

    for wl in workloads {
        let mut row = vec![wl.to_string()];
        for scheme in &schemes {
            let name = scheme.name;
            let r = reports.next().expect("report per scenario");
            row.push(f(r.mean_elephant_tput(), 2));
            if matches!(wl, "stride" | "bijection" | "shuffle") {
                let mut fct = r.mice_fct_ms.clone();
                if !fct.is_empty() {
                    fct_tbl.row([
                        wl.to_string(),
                        name.to_string(),
                        f(fct.percentile(50.0).unwrap(), 2),
                        f(fct.percentile(99.0).unwrap(), 2),
                        f(fct.percentile(99.9).unwrap(), 2),
                        r.timeouts.to_string(),
                    ]);
                    fct_cdfs.push((format!("{wl}/{name}"), r.mice_fct_ms));
                }
            }
        }
        tput_tbl.row(row);
    }

    println!("\nFig 15 — elephant throughput (Gbps):");
    tput_tbl.print();
    println!("\nFig 16 — mice FCT CDFs (ms):");
    for (label, fct) in &fct_cdfs {
        print_cdf(label, fct, "ms");
    }
    println!("\nFig 16 — mice FCT percentiles (ms):");
    fct_tbl.print();
}
