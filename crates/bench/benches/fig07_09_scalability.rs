//! Figures 7, 8, 9: the scalability benchmark (Fig 4a topology).
//!
//! Path count ν swept from 2 to 8 with one flow per path (host pairs
//! L1→L2). The paper reports: Presto's throughput tracks the non-blocking
//! Optimal within a few percent at every path count, while ECMP and MPTCP
//! lose throughput to hash collisions (Fig 7); Presto's RTT stays near
//! Optimal while collisions inflate ECMP/MPTCP latency (Fig 8); Presto
//! and Optimal lose nothing while MPTCP shows the highest loss (Fig 9a);
//! Presto/Optimal/MPTCP achieve near-perfect fairness, ECMP does not
//! (Fig 9b).

use presto_bench::{
    banner, base_seed, mean, new_table, print_cdf, runs, sim_duration, table::f, warmup_of, workers,
};
use presto_simcore::SimTime;
use presto_testbed::{ParallelRunner, Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

fn schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::ecmp(),
        SchemeSpec::mptcp(),
        SchemeSpec::presto(),
        SchemeSpec::optimal(),
    ]
}

fn main() {
    banner(
        "Figures 7-9",
        "scalability: tput / RTT / loss / fairness vs path count",
        "Presto tracks Optimal; ECMP & MPTCP collide; MPTCP loses most packets",
    );
    let duration = sim_duration();
    let mut tput_tbl = new_table(["paths", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut fair_tbl = new_table(["paths", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut loss_tbl = new_table(["paths", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut rtt8 = Vec::new();

    // Build the whole sweep up front, fan it out, then aggregate in order.
    let paths_sweep = [2usize, 3, 4, 5, 6, 7, 8];
    let schemes = schemes();
    let mut scenarios = Vec::new();
    let mut meta = Vec::new();
    for (pi, &paths) in paths_sweep.iter().enumerate() {
        for (si, scheme) in schemes.iter().enumerate() {
            for run in 0..runs() {
                let sc = Scenario::builder(scheme.clone(), base_seed() + run)
                    .topology(presto_netsim::ClosSpec {
                        spines: paths,
                        leaves: 2,
                        hosts_per_leaf: 8,
                        ..presto_netsim::ClosSpec::default()
                    })
                    .duration(duration)
                    .warmup(warmup_of(duration))
                    .elephants(
                        (0..paths)
                            .map(|i| FlowSpec::elephant(i, 8 + i, SimTime::ZERO))
                            .collect(),
                    )
                    .probes((0..paths).map(|i| (i, 8 + i)).collect())
                    .build();
                scenarios.push(sc);
                meta.push((pi, si, run));
            }
        }
    }
    let reports = ParallelRunner::new(workers()).run(&scenarios);

    let empty = || vec![vec![Vec::new(); schemes.len()]; paths_sweep.len()];
    let (mut tput, mut fair, mut loss) = (empty(), empty(), empty());
    for (&(pi, si, run), r) in meta.iter().zip(&reports) {
        tput[pi][si].push(r.mean_elephant_tput());
        fair[pi][si].push(r.fairness());
        loss[pi][si].push(r.loss_rate * 100.0);
        if paths_sweep[pi] == 8 && run == 0 {
            rtt8.push((schemes[si].name, r.rtt_ms.clone()));
        }
    }
    for (pi, &paths) in paths_sweep.iter().enumerate() {
        tput_tbl.row([
            paths.to_string(),
            f(mean(&tput[pi][0]), 2),
            f(mean(&tput[pi][1]), 2),
            f(mean(&tput[pi][2]), 2),
            f(mean(&tput[pi][3]), 2),
        ]);
        fair_tbl.row([
            paths.to_string(),
            f(mean(&fair[pi][0]), 3),
            f(mean(&fair[pi][1]), 3),
            f(mean(&fair[pi][2]), 3),
            f(mean(&fair[pi][3]), 3),
        ]);
        loss_tbl.row([
            paths.to_string(),
            f(mean(&loss[pi][0]), 4),
            f(mean(&loss[pi][1]), 4),
            f(mean(&loss[pi][2]), 4),
            f(mean(&loss[pi][3]), 4),
        ]);
    }
    println!("\nFig 7 — avg flow throughput (Gbps) vs path count:");
    tput_tbl.print();
    println!("\nFig 8 — RTT CDF at 8 paths (ms):");
    for (name, rtt) in &rtt8 {
        print_cdf(name, rtt, "ms");
    }
    println!("\nFig 9a — loss rate (%) vs path count:");
    loss_tbl.print();
    println!("\nFig 9b — Jain fairness vs path count:");
    fair_tbl.print();
}
