//! Figures 7, 8, 9: the scalability benchmark (Fig 4a topology).
//!
//! Path count ν swept from 2 to 8 with one flow per path (host pairs
//! L1→L2). The paper reports: Presto's throughput tracks the non-blocking
//! Optimal within a few percent at every path count, while ECMP and MPTCP
//! lose throughput to hash collisions (Fig 7); Presto's RTT stays near
//! Optimal while collisions inflate ECMP/MPTCP latency (Fig 8); Presto
//! and Optimal lose nothing while MPTCP shows the highest loss (Fig 9a);
//! Presto/Optimal/MPTCP achieve near-perfect fairness, ECMP does not
//! (Fig 9b).

use presto_bench::{banner, base_seed, mean, new_table, print_cdf, runs, sim_duration, table::f, warmup_of};
use presto_simcore::SimTime;
use presto_testbed::{Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

fn schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::ecmp(),
        SchemeSpec::mptcp(),
        SchemeSpec::presto(),
        SchemeSpec::optimal(),
    ]
}

fn main() {
    banner(
        "Figures 7-9",
        "scalability: tput / RTT / loss / fairness vs path count",
        "Presto tracks Optimal; ECMP & MPTCP collide; MPTCP loses most packets",
    );
    let duration = sim_duration();
    let mut tput_tbl = new_table(["paths", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut fair_tbl = new_table(["paths", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut loss_tbl = new_table(["paths", "ECMP", "MPTCP", "Presto", "Optimal"]);
    let mut rtt8 = Vec::new();

    for paths in [2usize, 3, 4, 5, 6, 7, 8] {
        let mut tputs = Vec::new();
        let mut fairs = Vec::new();
        let mut losses = Vec::new();
        for scheme in schemes() {
            let mut per_run_tput = Vec::new();
            let mut per_run_fair = Vec::new();
            let mut per_run_loss = Vec::new();
            for run in 0..runs() {
                let mut sc = Scenario::scalability(scheme.clone(), paths, base_seed() + run);
                sc.duration = duration;
                sc.warmup = warmup_of(duration);
                sc.flows = (0..paths)
                    .map(|i| FlowSpec::elephant(i, 8 + i, SimTime::ZERO))
                    .collect();
                sc.probes = (0..paths).map(|i| (i, 8 + i)).collect();
                let r = sc.run();
                per_run_tput.push(r.mean_elephant_tput());
                per_run_fair.push(r.fairness());
                per_run_loss.push(r.loss_rate * 100.0);
                if paths == 8 && run == 0 {
                    rtt8.push((scheme.name, r.rtt_ms.clone()));
                }
            }
            tputs.push(mean(&per_run_tput));
            fairs.push(mean(&per_run_fair));
            losses.push(mean(&per_run_loss));
        }
        tput_tbl.row([
            paths.to_string(),
            f(tputs[0], 2),
            f(tputs[1], 2),
            f(tputs[2], 2),
            f(tputs[3], 2),
        ]);
        fair_tbl.row([
            paths.to_string(),
            f(fairs[0], 3),
            f(fairs[1], 3),
            f(fairs[2], 3),
            f(fairs[3], 3),
        ]);
        loss_tbl.row([
            paths.to_string(),
            f(losses[0], 4),
            f(losses[1], 4),
            f(losses[2], 4),
            f(losses[3], 4),
        ]);
    }
    println!("\nFig 7 — avg flow throughput (Gbps) vs path count:");
    tput_tbl.print();
    println!("\nFig 8 — RTT CDF at 8 paths (ms):");
    for (name, rtt) in &rtt8 {
        print_cdf(name, rtt, "ms");
    }
    println!("\nFig 9a — loss rate (%) vs path count:");
    loss_tbl.print();
    println!("\nFig 9b — Jain fairness vs path count:");
    fair_tbl.print();
}
