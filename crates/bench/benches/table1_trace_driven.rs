//! Table 1: trace-driven workload — mice FCT percentiles vs ECMP.
//!
//! Every server continuously samples flow sizes (heavy-tailed mixture
//! shaped after the IMC'09 measurements, ×10-scaled per §6) and
//! inter-arrival gaps, sending to random inter-rack receivers. Mice are
//! flows <100 KB. Paper (normalized to ECMP):
//!
//! ```text
//! percentile   Optimal   Presto
//! 50%          -12%      -9%
//! 90%          -34%      -32%
//! 99%          -63%      -56%
//! 99.9%        -61%      -60%
//! ```
//!
//! plus Presto elephant throughput within 2% of Optimal and >10% above
//! ECMP. MPTCP is omitted exactly as the paper omits it (unstable with
//! many small flows).

use presto_bench::{
    banner, base_seed, new_table, sim_duration,
    table::{f, pct_vs},
    warmup_of, workers,
};
use presto_simcore::{SimDuration, SimTime};
use presto_testbed::{ParallelRunner, Scenario, SchemeSpec};
use presto_workloads::{FlowSpec, TraceWorkload};

fn trace_flows(seed: u64, horizon: SimTime) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for src in 0..16usize {
        let mut w = TraceWorkload::new(seed, src, 16, 4, SimDuration::from_millis(2));
        for tf in w.flows_until(horizon) {
            flows.push(FlowSpec {
                src,
                dst: tf.dst,
                start: tf.at,
                bytes: Some(tf.bytes),
                // Only mice FCTs feed Table 1; larger flows report
                // throughput via bulk-transfer accounting.
                measure_fct: tf.bytes < 100_000,
            });
        }
    }
    flows
}

fn main() {
    banner(
        "Table 1",
        "trace-driven workload: mice (<100KB) FCT normalized to ECMP",
        "Presto: -9% p50, -32% p90, -56% p99, -60% p99.9; elephants within 2% of Optimal",
    );
    let duration = sim_duration() * 4;
    let horizon = SimTime::ZERO + duration;
    let schemes = [
        SchemeSpec::ecmp(),
        SchemeSpec::optimal(),
        SchemeSpec::presto(),
    ];
    let scenarios: Vec<Scenario> = schemes
        .iter()
        .map(|scheme| {
            // FCT statistics come from mice only; elephants report
            // throughput through completion times of their bulk transfers.
            Scenario::builder(scheme.clone(), base_seed())
                .duration(duration)
                .warmup(warmup_of(duration))
                .flows(trace_flows(base_seed(), horizon))
                .build()
        })
        .collect();
    let reports = ParallelRunner::new(workers()).run(&scenarios);
    let results: Vec<(&str, presto_testbed::Report)> =
        schemes.iter().map(|s| s.name).zip(reports).collect();

    let mut tbl = new_table(["percentile", "ECMP(ms)", "Optimal", "Presto"]);
    let base = &results[0].1.mice_fct_ms;
    for p in [50.0, 90.0, 99.0, 99.9] {
        let b = base.clone().percentile(p).unwrap_or(0.0);
        let o = results[1]
            .1
            .mice_fct_ms
            .clone()
            .percentile(p)
            .unwrap_or(0.0);
        let pr = results[2]
            .1
            .mice_fct_ms
            .clone()
            .percentile(p)
            .unwrap_or(0.0);
        tbl.row([format!("{p}%"), f(b, 2), pct_vs(b, o), pct_vs(b, pr)]);
    }
    tbl.print();
    println!("\nElephant goodput and run health:");
    let mut t2 = new_table([
        "scheme",
        "mice",
        "elephant tput(Gbps)",
        "retx",
        "timeouts",
        "loss(%)",
    ]);
    for (name, r) in &results {
        t2.row([
            name.to_string(),
            r.mice_fct_ms.len().to_string(),
            f(r.mean_elephant_tput(), 2),
            r.retransmissions.to_string(),
            r.timeouts.to_string(),
            f(r.loss_rate * 100.0, 4),
        ]);
    }
    t2.print();
}
