//! Ablation: static drop-tail ports vs a shared-memory ToR buffer.
//!
//! The paper's G8264 is a shared-buffer switch. This ablation repeats the
//! stride comparison with (a) 1 MB static per-port drop-tail and (b) a
//! 4 MB shared pool with dynamic-threshold admission (α = 1), to show the
//! qualitative results (Presto ≈ Optimal ≫ ECMP) do not depend on the
//! buffering architecture — while tails and loss move as expected (DT
//! gives a lone congested port a deeper buffer: fewer drops, longer tail).

use presto_bench::{banner, base_seed, new_table, sim_duration, table::f, warmup_of};
use presto_testbed::{stride_elephants, Scenario, SchemeSpec};

fn main() {
    banner(
        "Ablation: buffering architecture",
        "static per-port drop-tail vs shared-memory DT pool, stride",
        "(modeling choice; the paper's switch is shared-buffer)",
    );
    let mut tbl = new_table([
        "buffering",
        "scheme",
        "tput(Gbps)",
        "loss(%)",
        "rtt p50(ms)",
        "rtt p99.9(ms)",
    ]);
    for &shared in &[false, true] {
        for scheme in [SchemeSpec::ecmp(), SchemeSpec::presto()] {
            let name = scheme.name;
            let mut b = Scenario::builder(scheme, base_seed())
                .duration(sim_duration())
                .warmup(warmup_of(sim_duration()))
                .elephants(stride_elephants(16, 8))
                .probes((0..16).map(|i| (i, (i + 8) % 16)).collect());
            if shared {
                b = b.topology(presto_netsim::ClosSpec {
                    shared_buffer: Some((4 * 1024 * 1024, 1.0)),
                    ..presto_netsim::ClosSpec::default()
                });
            }
            let r = b.build().run();
            let mut rtt = r.rtt_ms.clone();
            tbl.row([
                if shared {
                    "shared-4MB a=1"
                } else {
                    "droptail-1MB"
                }
                .to_string(),
                name.to_string(),
                f(r.mean_elephant_tput(), 2),
                f(r.loss_rate * 100.0, 4),
                f(rtt.percentile(50.0).unwrap_or(0.0), 3),
                f(rtt.percentile(99.9).unwrap_or(0.0), 3),
            ]);
        }
    }
    tbl.print();
}
