//! Figure 1: flowlet sizes of a bulk transfer vs number of competing flows.
//!
//! The paper connects a sender and receiver to one switch, runs an
//! scp-emulating 1 GB transfer while 0-8 nuttcp background flows hammer
//! the same receiver, and cuts flowlets with a 500 µs inactivity timer.
//! Finding: flowlet sizes are wildly non-uniform — with up to 3 competing
//! flows, more than half of the transfer rides in a *single* flowlet, so
//! flowlet-level load balancing cannot spread elephants.
//!
//! Scaling: the 1 GB transfer becomes 16 MB (the simulated runs are
//! hundreds of ms, not minutes); the size *distribution* shape is what
//! matters.

use presto_bench::{banner, base_seed, new_table, table::f};
use presto_simcore::{SimDuration, SimTime};
use presto_testbed::{Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

fn main() {
    banner(
        "Figure 1",
        "flowlet size distribution of a bulk transfer (500 us timer)",
        ">50% of bytes in one flowlet for <=3 competing flows; long tail",
    );
    let transfer_bytes: u64 = 16 * 1024 * 1024;
    let mut tbl = new_table([
        "competing",
        "flowlets",
        "largest(MB)",
        "largest/total",
        "top3/total",
    ]);
    for competing in 0..=8usize {
        let scheme = SchemeSpec::flowlet(SimDuration::from_micros(500));
        // The observed transfer: host 0 -> host 8, plus competing flows
        // from other senders to the same receiver.
        let mut flows = vec![FlowSpec::bulk(0, 8, SimTime::ZERO, transfer_bytes)];
        for c in 0..competing {
            flows.push(FlowSpec::elephant(1 + c, 8, SimTime::ZERO));
        }
        let r = Scenario::builder(scheme, base_seed())
            .duration(SimDuration::from_millis(600))
            .warmup(SimDuration::from_millis(1))
            .flows(flows)
            .build()
            .run();
        let sizes = r.flowlet_sizes.get(&0).cloned().unwrap_or_default();
        let total: u64 = sizes.iter().sum();
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let largest = sorted.first().copied().unwrap_or(0);
        let top3: u64 = sorted.iter().take(3).sum();
        tbl.row([
            competing.to_string(),
            sizes.len().to_string(),
            f(largest as f64 / 1e6, 2),
            f(largest as f64 / total.max(1) as f64, 2),
            f(top3 as f64 / total.max(1) as f64, 2),
        ]);
        // Top-10 stacked values, as the figure plots.
        let top10: Vec<String> = sorted
            .iter()
            .take(10)
            .map(|&b| format!("{:.1}", b as f64 / 1e6))
            .collect();
        println!(
            "  competing={competing}: top-10 flowlet sizes (MB): {}",
            top10.join(" ")
        );
    }
    println!();
    tbl.print();
}
