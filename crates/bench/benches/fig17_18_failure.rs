//! Figures 17 & 18: link failure — symmetry / fast failover / weighted
//! multipathing.
//!
//! The S1-L1 link dies. Three stages, as in the paper:
//!
//! * **symmetry** — the link is up (baseline);
//! * **failover** — hardware fast-failover redirects L1's uplink traffic
//!   to S2; traffic arriving at S1 for L1 is lost until TCP recovers,
//!   so the L4→L1 direction suffers most;
//! * **weighted** — the controller learns of the failure, prunes the
//!   broken spanning tree per (source, destination) pair, and pushes
//!   weighted label schedules to the vSwitches.
//!
//! Paper: reasonable throughput in every stage; weighted recovers most of
//! the loss; RTTs grow after failure since the topology is no longer
//! non-blocking (Fig 18).

use presto_bench::{banner, base_seed, new_table, print_cdf, sim_duration, table::f, warmup_of};
use presto_faults::{FaultPlan, Notify};
use presto_simcore::SimTime;
use presto_testbed::{bijection_elephants, stride_elephants, Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

/// L1→L4: each host on leaf 0 sends to one host on leaf 3.
fn l1_to_l4() -> Vec<FlowSpec> {
    (0..4)
        .map(|i| FlowSpec::elephant(i, 12 + i, SimTime::ZERO))
        .collect()
}

fn l4_to_l1() -> Vec<FlowSpec> {
    (0..4)
        .map(|i| FlowSpec::elephant(12 + i, i, SimTime::ZERO))
        .collect()
}

fn main() {
    banner(
        "Figures 17-18",
        "Presto under S1-L1 link failure: symmetry / failover / weighted",
        "throughput dips under failover (worst for L4->L1), weighted recovers; RTT grows post-failure",
    );
    let stages: [(&str, FaultPlan); 3] = [
        ("symmetry", FaultPlan::new()),
        (
            "failover",
            FaultPlan::new().link_down(SimTime::ZERO, 0, 0, 0, Notify::Never),
        ),
        (
            "weighted",
            FaultPlan::new().link_down(SimTime::ZERO, 0, 0, 0, Notify::Immediate),
        ),
    ];
    type FlowsFn = fn() -> Vec<FlowSpec>;
    let workloads: [(&str, FlowsFn); 4] = [
        ("L1->L4", l1_to_l4),
        ("L4->L1", l4_to_l1),
        ("stride", || stride_elephants(16, 8)),
        ("bijection", || bijection_elephants(16, 4, 7)),
    ];

    let mut tbl = new_table(["workload", "symmetry", "failover", "weighted"]);
    let mut rtt_bijection = Vec::new();
    for (wname, flows) in &workloads {
        let mut row = vec![wname.to_string()];
        for (sname, faults) in &stages {
            let flows = flows();
            let probes = if *wname == "bijection" {
                flows.iter().map(|f| (f.src, f.dst)).collect()
            } else {
                Vec::new()
            };
            let r = Scenario::builder(SchemeSpec::presto(), base_seed())
                .duration(sim_duration())
                .warmup(warmup_of(sim_duration()))
                .elephants(flows)
                .probes(probes)
                .faults(faults.clone())
                .build()
                .run();
            row.push(f(r.mean_elephant_tput(), 2));
            if *wname == "bijection" {
                rtt_bijection.push((*sname, r.rtt_ms));
            }
        }
        tbl.row(row);
    }
    println!("\nFig 17 — Presto avg elephant throughput (Gbps) per stage:");
    tbl.print();
    println!("\nFig 18 — RTT CDFs, random bijection (ms):");
    for (name, rtt) in &rtt_bijection {
        print_cdf(name, rtt, "ms");
    }
}
