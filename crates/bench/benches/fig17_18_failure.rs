//! Figures 17 & 18: link failure — symmetry / fast failover / weighted
//! multipathing.
//!
//! The S1-L1 link dies. Three stages, as in the paper:
//!
//! * **symmetry** — the link is up (baseline);
//! * **failover** — hardware fast-failover redirects L1's uplink traffic
//!   to S2; traffic arriving at S1 for L1 is lost until TCP recovers,
//!   so the L4→L1 direction suffers most;
//! * **weighted** — the controller learns of the failure, prunes the
//!   broken spanning tree per (source, destination) pair, and pushes
//!   weighted label schedules to the vSwitches.
//!
//! Paper: reasonable throughput in every stage; weighted recovers most of
//! the loss; RTTs grow after failure since the topology is no longer
//! non-blocking (Fig 18).

use presto_bench::{banner, base_seed, new_table, print_cdf, sim_duration, table::f, warmup_of};
use presto_simcore::SimTime;
use presto_testbed::{bijection_elephants, stride_elephants, FailureSpec, Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

/// L1→L4: each host on leaf 0 sends to one host on leaf 3.
fn l1_to_l4() -> Vec<FlowSpec> {
    (0..4)
        .map(|i| FlowSpec::elephant(i, 12 + i, SimTime::ZERO))
        .collect()
}

fn l4_to_l1() -> Vec<FlowSpec> {
    (0..4)
        .map(|i| FlowSpec::elephant(12 + i, i, SimTime::ZERO))
        .collect()
}

fn main() {
    banner(
        "Figures 17-18",
        "Presto under S1-L1 link failure: symmetry / failover / weighted",
        "throughput dips under failover (worst for L4->L1), weighted recovers; RTT grows post-failure",
    );
    let stages: [(&str, Option<FailureSpec>); 3] = [
        ("symmetry", None),
        (
            "failover",
            Some(FailureSpec {
                at: SimTime::ZERO,
                leaf: 0,
                spine: 0,
                link: 0,
                controller_at: None,
            }),
        ),
        (
            "weighted",
            Some(FailureSpec {
                at: SimTime::ZERO,
                leaf: 0,
                spine: 0,
                link: 0,
                controller_at: Some(SimTime::ZERO),
            }),
        ),
    ];
    type FlowsFn = fn() -> Vec<FlowSpec>;
    let workloads: [(&str, FlowsFn); 4] = [
        ("L1->L4", l1_to_l4),
        ("L4->L1", l4_to_l1),
        ("stride", || stride_elephants(16, 8)),
        ("bijection", || bijection_elephants(16, 4, 7)),
    ];

    let mut tbl = new_table(["workload", "symmetry", "failover", "weighted"]);
    let mut rtt_bijection = Vec::new();
    for (wname, flows) in &workloads {
        let mut row = vec![wname.to_string()];
        for (sname, failure) in &stages {
            let mut sc = Scenario::testbed16(SchemeSpec::presto(), base_seed());
            sc.duration = sim_duration();
            sc.warmup = warmup_of(sc.duration);
            sc.flows = flows();
            sc.failure = *failure;
            if *wname == "bijection" {
                sc.probes = sc.flows.iter().map(|f| (f.src, f.dst)).collect();
            }
            let r = sc.run();
            row.push(f(r.mean_elephant_tput(), 2));
            if *wname == "bijection" {
                rtt_bijection.push((*sname, r.rtt_ms));
            }
        }
        tbl.row(row);
    }
    println!("\nFig 17 — Presto avg elephant throughput (Gbps) per stage:");
    tbl.print();
    println!("\nFig 18 — RTT CDFs, random bijection (ms):");
    for (name, rtt) in &rtt_bijection {
        print_cdf(name, rtt, "ms");
    }
}
