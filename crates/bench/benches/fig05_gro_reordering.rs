//! Figure 5: Presto GRO vs stock ("Official") GRO under flowcell spraying.
//!
//! Two senders on leaf L1 spray flowcells over two spine paths to two
//! receivers on leaf L2 (the Fig 4b topology). Compared on:
//!
//! * (a) the out-of-order segment count per flowcell — how many *other*
//!   flowcells' segments TCP saw between the first and last segment of
//!   each flowcell (0 = reordering fully masked);
//! * (b) the sizes of segments pushed up the stack;
//! * throughput and receiver CPU (paper: 9.3 Gbps @ 69% for Presto GRO vs
//!   4.6 Gbps @ 86% for stock GRO).

use presto_bench::{banner, base_seed, new_table, print_cdf, sim_duration, table::f, warmup_of};
use presto_simcore::{SimDuration, SimTime};
use presto_testbed::{Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

fn main() {
    banner(
        "Figure 5",
        "masking reordering in GRO (2 flows sprayed over 2 paths)",
        "Presto GRO: zero OOO, 64KB-ish segments, 9.3 Gbps @ 69% CPU; \
         Official GRO: heavy OOO, MTU-ish segments, 4.6 Gbps @ 86% CPU",
    );
    let mut tbl = new_table(["gro", "tput(Gbps)", "rx cpu(%)", "ooo=0(%)", "seg p50(B)"]);
    for scheme in [
        SchemeSpec::presto(),
        SchemeSpec::from_token("presto-official-gro").unwrap(),
    ] {
        let label = if scheme.name.contains("Official") {
            "Official GRO"
        } else {
            "Presto GRO"
        };
        // A 27 us stagger between the senders breaks the phase lock that a
        // perfectly deterministic simulator would otherwise settle into
        // (real hosts drift via OS/NIC jitter), so the two flows' cells
        // genuinely collide on the spine queues as in the paper's run.
        let r = Scenario::builder(scheme, base_seed())
            .topology(presto_netsim::ClosSpec {
                spines: 2,
                leaves: 2,
                hosts_per_leaf: 8,
                ..presto_netsim::ClosSpec::default()
            })
            .duration(sim_duration())
            .warmup(warmup_of(sim_duration()))
            .elephants(vec![
                FlowSpec::elephant(0, 8, SimTime::ZERO),
                FlowSpec::elephant(1, 9, SimTime::ZERO + SimDuration::from_micros(27)),
            ])
            .collect_reorder(true)
            .cpu_sample(SimDuration::from_millis(2))
            .build()
            .run();
        let mut ooo = r.ooo_cell_counts.clone();
        let zeros =
            ooo.values().iter().filter(|&&v| v == 0.0).count() as f64 / ooo.len().max(1) as f64;
        print_cdf(&format!("{label} OOO cells"), &ooo, "cells");
        print_cdf(&format!("{label} seg size"), &r.segment_bytes, "bytes");
        let mut segs = r.segment_bytes.clone();
        tbl.row([
            label.to_string(),
            f(r.mean_elephant_tput(), 2),
            f(r.mean_cpu_util(), 1),
            f(zeros * 100.0, 1),
            f(segs.percentile(50.0).unwrap_or(0.0), 0),
        ]);
        let _ = ooo.percentile(50.0);
    }
    println!();
    tbl.print();
}
