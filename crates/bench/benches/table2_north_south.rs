//! Table 2: east-west mice FCT with ECMP-balanced north-south cross
//! traffic.
//!
//! One 100 Mbps "remote user" hangs off each spine; every server opens a
//! flow to a random remote every millisecond (web-response sizes), while
//! a stride workload runs east-west. Paper (east-west mice FCT normalized
//! to ECMP):
//!
//! ```text
//! percentile   Optimal   Presto    MPTCP
//! 50%          -34%      -20%      -12%
//! 90%          -83%      -79%      -73%
//! 99%          -89%      -86%      -73%
//! 99.9%        -91%      -87%      TIMEOUT
//! ```
//!
//! and average east-west throughputs 5.7 / 7.4 / 8.2 / 8.9 Gbps for
//! ECMP / MPTCP / Presto / Optimal.

use presto_bench::{
    banner, base_seed, new_table, sim_duration,
    table::{f, pct_vs},
    warmup_of,
};
use presto_simcore::{SimDuration, SimTime};
use presto_testbed::{stride_elephants, MiceSpec, Scenario, SchemeSpec};
use presto_workloads::northsouth::ns_schedule;
use presto_workloads::FlowSpec;

fn main() {
    banner(
        "Table 2",
        "mice FCT with north-south cross traffic (stride east-west)",
        "Presto -20/-79/-86/-87% vs ECMP; MPTCP TIMEOUT at p99.9; tputs 5.7/7.4/8.2/8.9",
    );
    let n_remote = 4usize;
    let duration = sim_duration() * 2;
    let mut results = Vec::new();
    for scheme in [
        SchemeSpec::ecmp(),
        SchemeSpec::mptcp(),
        SchemeSpec::presto(),
        SchemeSpec::optimal(),
    ] {
        let name = scheme.name;
        // North-south: every server to a random remote every 1 ms, on top
        // of the stride east-west elephants.
        let mut flows = stride_elephants(16, 8);
        for src in 0..16usize {
            for nsf in ns_schedule(base_seed(), src, n_remote, SimTime::ZERO + duration) {
                flows.push(FlowSpec::bulk(src, 16 + nsf.remote, nsf.at, nsf.bytes));
            }
        }
        let r = Scenario::builder(scheme, base_seed())
            .duration(duration)
            .warmup(warmup_of(duration))
            .wan_remotes(n_remote)
            .flows(flows)
            // East-west mice on the stride pairs.
            .mice(
                (0..16)
                    .map(|i| MiceSpec {
                        src: i,
                        dst: (i + 8) % 16,
                        bytes: 50_000,
                        interval: SimDuration::from_millis(4),
                    })
                    .collect(),
            )
            .build()
            .run();
        results.push((name, r));
    }

    let base = results[0].1.mice_fct_ms.clone();
    let mut tbl = new_table(["percentile", "ECMP(ms)", "MPTCP", "Presto", "Optimal"]);
    for p in [50.0, 90.0, 99.0, 99.9] {
        let b = base.clone().percentile(p).unwrap_or(0.0);
        let cells: Vec<String> = results[1..]
            .iter()
            .map(|(_, r)| {
                let v = r.mice_fct_ms.clone().percentile(p).unwrap_or(0.0);
                // The paper prints TIMEOUT when MPTCP mice hit RTO-scale
                // completion times (>= the 10 ms RTO floor here).
                if v > 9.0 {
                    "TIMEOUT".to_string()
                } else {
                    pct_vs(b, v)
                }
            })
            .collect();
        tbl.row([
            format!("{p}%"),
            f(b, 2),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    tbl.print();

    println!("\nEast-west elephant throughput:");
    let mut t2 = new_table(["scheme", "tput(Gbps)", "mice", "timeouts"]);
    for (name, r) in &results {
        t2.row([
            name.to_string(),
            f(r.mean_elephant_tput(), 2),
            r.mice_fct_ms.len().to_string(),
            r.timeouts.to_string(),
        ]);
    }
    t2.print();
}
