//! Overhead of the telemetry layer on the simulator's end-to-end path.
//!
//! Three configurations of the same short testbed16 run:
//!
//! * `baseline` — no telemetry attached;
//! * `attached` — telemetry layer on (counters, periodic sampler, queue
//!   profiler; trace-event recording only if the crate was built with
//!   `--features telemetry`);
//! * the per-event cost of the no-op `trace_event!` path.
//!
//! The observability contract (DESIGN.md §8): with no telemetry attached
//! — the default for every figure harness — each instrumented site costs
//! one `Option` load-and-branch, and with the feature off event
//! construction is compiled out entirely (the `trace_event_disabled_site`
//! bench shows the whole 1k-site loop folding to nothing). `attached` is
//! the opt-in price: the queue profiler (a classify call plus two counter
//! adds per scheduled event) and the periodic sampler. CI runs this as a
//! smoke check (it must build and complete), not as a threshold gate —
//! wall-clock thresholds on shared runners flake.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use presto_simcore::SimDuration;
use presto_telemetry::{trace_event, SharedSink, TelemetryConfig, TraceEvent};
use presto_testbed::{stride_elephants, Scenario, SchemeSpec};

fn tiny(telemetry: bool) -> Scenario {
    let mut b = Scenario::builder(SchemeSpec::presto(), 42)
        .duration(SimDuration::from_millis(4))
        .warmup(SimDuration::from_millis(1))
        .elephants(stride_elephants(16, 8));
    if telemetry {
        b = b.telemetry(TelemetryConfig::default());
    }
    b.build()
}

fn bench_run_overhead(c: &mut Criterion) {
    c.bench_function("telemetry_run_baseline", |b| {
        let sc = tiny(false);
        b.iter(|| black_box(sc.run().digest()))
    });
    c.bench_function("telemetry_run_attached", |b| {
        let sc = tiny(true);
        b.iter(|| black_box(sc.run().digest()))
    });
}

fn bench_noop_event(c: &mut Criterion) {
    // The cost of an instrumented site that is *not* wired to a sink —
    // what every fabric enqueue pays in a plain run.
    c.bench_function("trace_event_disabled_site_1k", |b| {
        let sink: Option<SharedSink> = None;
        b.iter(|| {
            for i in 0..1000u64 {
                trace_event!(
                    sink,
                    i,
                    TraceEvent::PacketEnqueued {
                        link: i as u32,
                        queue_bytes: i,
                    }
                );
            }
            black_box(&sink)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_run_overhead, bench_noop_event
);
criterion_main!(benches);
