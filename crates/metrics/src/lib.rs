//! Measurement toolkit for the Presto reproduction.
//!
//! The paper evaluates throughput, round-trip time, mice flow completion
//! time, packet loss (switch counters), and Jain's fairness index (§4).
//! This crate provides the statistics used to report all of them:
//!
//! * [`Samples`] — an accumulating sample set with exact percentiles,
//! * [`Cdf`] — empirical CDFs matching the paper's figures,
//! * [`fairness::jain_index`] — Jain, Chiu & Hawe's fairness measure,
//! * [`TimeSeries`] — timestamped samples (e.g. the CPU usage of Fig 6),
//! * [`LogHistogram`] — compact log₂-bucketed histograms for huge sample
//!   populations,
//! * [`MetricSummary`] — six-number percentile summaries, the row format
//!   of campaign results tables (`presto-lab`),
//! * [`DeadlineTracker`] — per-request deadline accounting for
//!   partition-aggregate (incast) workloads,
//! * [`reorder`] — RFC 4737-style packet reordering metrics (§5 reports
//!   reordered-packet fractions for the flowlet comparison),
//! * [`table`] — plain-text table rendering for the benchmark harnesses,
//! * [`units`] — Gbps/size conversions shared by every experiment.

#![warn(missing_docs)]

pub mod cdf;
pub mod deadline;
pub mod fairness;
pub mod histogram;
pub mod reorder;
pub mod samples;
pub mod summary;
pub mod table;
pub mod timeseries;
pub mod units;

pub use cdf::Cdf;
pub use deadline::DeadlineTracker;
pub use histogram::LogHistogram;
pub use reorder::{reorder_stats, ReorderStats};
pub use samples::Samples;
pub use summary::MetricSummary;
pub use timeseries::TimeSeries;
