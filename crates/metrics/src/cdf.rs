//! Empirical cumulative distribution functions.
//!
//! The paper presents most latency results as CDFs (Figs 5, 8, 11, 13, 14,
//! 16, 18). [`Cdf`] is an immutable snapshot of a sample set supporting
//! both directions of query: `F(x)` (fraction ≤ x) and the quantile
//! function `F⁻¹(q)`.

use crate::samples::Samples;

/// An empirical CDF over a fixed set of samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from any collection of samples.
    pub fn from_samples(samples: &Samples) -> Self {
        let mut sorted = samples.values().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Cdf { sorted }
    }

    /// Build from a raw slice.
    pub fn from_values(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Cdf { sorted }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of samples ≤ `x`. Zero for an empty CDF.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `F⁻¹(q)`: smallest sample at or above the `q` quantile,
    /// `q ∈ [0, 1]`. `None` for an empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.sorted[idx])
    }

    /// Render the CDF as `(value, cumulative fraction)` points, one per
    /// distinct sample — the exact staircase the paper's figures plot.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let v = self.sorted[i];
            let mut j = i + 1;
            while j < n && self.sorted[j] == v {
                j += 1;
            }
            out.push((v, j as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Sample the quantile function at evenly spaced fractions — a compact
    /// fixed-width series for terminal output (`steps` ≥ 2 points from
    /// q≈0 to q=1).
    pub fn series(&self, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps >= 2);
        if self.sorted.is_empty() {
            return Vec::new();
        }
        (0..steps)
            .map(|i| {
                let q = i as f64 / (steps - 1) as f64;
                (q, self.quantile(q.max(1e-9)).unwrap())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf(vals: &[f64]) -> Cdf {
        Cdf::from_values(vals)
    }

    #[test]
    fn empty_cdf() {
        let c = cdf(&[]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_le(10.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
        assert!(c.points().is_empty());
    }

    #[test]
    fn fraction_le_basics() {
        let c = cdf(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_le(0.5), 0.0);
        assert_eq!(c.fraction_le(1.0), 0.25);
        assert_eq!(c.fraction_le(2.5), 0.5);
        assert_eq!(c.fraction_le(4.0), 1.0);
        assert_eq!(c.fraction_le(100.0), 1.0);
    }

    #[test]
    fn quantile_inverts_fraction() {
        let c = cdf(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(c.quantile(0.2), Some(10.0));
        assert_eq!(c.quantile(0.21), Some(20.0));
        assert_eq!(c.quantile(1.0), Some(50.0));
        assert_eq!(c.quantile(0.0), Some(10.0));
    }

    #[test]
    fn points_collapse_duplicates() {
        let c = cdf(&[1.0, 1.0, 2.0, 2.0, 2.0, 5.0]);
        assert_eq!(
            c.points(),
            vec![(1.0, 2.0 / 6.0), (2.0, 5.0 / 6.0), (5.0, 1.0)]
        );
    }

    #[test]
    fn series_is_monotone() {
        let vals: Vec<f64> = (0..997).map(|i| ((i * 7919) % 1000) as f64).collect();
        let c = cdf(&vals);
        let s = c.series(21);
        assert_eq!(s.len(), 21);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1, "series not monotone: {w:?}");
            assert!(w[1].0 > w[0].0);
        }
        assert_eq!(s.last().unwrap().1, 999.0);
    }

    #[test]
    fn from_samples_matches_from_values() {
        let s: Samples = [3.0, 1.0, 2.0].into_iter().collect();
        let a = Cdf::from_samples(&s);
        let b = Cdf::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(a.points(), b.points());
    }
}
