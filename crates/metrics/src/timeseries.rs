//! Timestamped sample series.
//!
//! Fig 6 of the paper plots receiver CPU usage sampled every 2 seconds over
//! a 400 second run. [`TimeSeries`] captures exactly that shape: a sequence
//! of `(seconds, value)` points with windowed aggregation helpers.

/// A series of `(time_secs, value)` observations in non-decreasing time
/// order.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append an observation. Time must be non-decreasing.
    pub fn push(&mut self, time_secs: f64, value: f64) {
        debug_assert!(time_secs.is_finite() && value.is_finite());
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(time_secs >= last, "time series must be monotone");
        }
        self.points.push((time_secs, value));
    }

    /// All points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of all values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Largest value, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).reduce(f64::max)
    }

    /// Re-bucket into fixed windows of `window_secs`, averaging values in
    /// each window; returns `(window_start_secs, mean_value)` per non-empty
    /// window. This is how per-event CPU accounting becomes Fig 6's 2-second
    /// samples.
    pub fn rebucket(&self, window_secs: f64) -> Vec<(f64, f64)> {
        assert!(window_secs > 0.0);
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut idx: Option<i64> = None;
        let (mut sum, mut n) = (0.0, 0u32);
        for &(t, v) in &self.points {
            let w = (t / window_secs).floor() as i64;
            match idx {
                Some(cur) if cur == w => {
                    sum += v;
                    n += 1;
                }
                Some(cur) => {
                    out.push((cur as f64 * window_secs, sum / n as f64));
                    idx = Some(w);
                    sum = v;
                    n = 1;
                }
                None => {
                    idx = Some(w);
                    sum = v;
                    n = 1;
                }
            }
        }
        if let (Some(cur), true) = (idx, n > 0) {
            out.push((cur as f64 * window_secs, sum / n as f64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_stats() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(0.0, 1.0);
        ts.push(1.0, 3.0);
        ts.push(2.0, 2.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.mean(), Some(2.0));
        assert_eq!(ts.max(), Some(3.0));
    }

    #[test]
    fn empty_stats_are_none() {
        let ts = TimeSeries::new();
        assert_eq!(ts.mean(), None);
        assert_eq!(ts.max(), None);
    }

    #[test]
    fn rebucket_averages_windows() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(i as f64 * 0.5, i as f64); // times 0.0 .. 4.5
        }
        let b = ts.rebucket(1.0);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0], (0.0, 0.5)); // samples 0,1
        assert_eq!(b[4], (4.0, 8.5)); // samples 8,9
    }

    #[test]
    fn rebucket_skips_empty_windows() {
        let mut ts = TimeSeries::new();
        ts.push(0.1, 1.0);
        ts.push(5.1, 2.0);
        let b = ts.rebucket(1.0);
        assert_eq!(b, vec![(0.0, 1.0), (5.0, 2.0)]);
    }
}
