//! Compact percentile summaries — the row format of campaign result
//! tables.
//!
//! A full [`Samples`] set can hold millions of FCT or RTT measurements;
//! persisting them per grid point would bloat a results store by orders of
//! magnitude. [`MetricSummary`] keeps exactly what the paper's tables (and
//! the regression gate) read back: count, mean, min/max, and the p50 / p90
//! / p99 percentiles.

use crate::Samples;

/// Six-number summary of one metric distribution.
///
/// All values are in the unit of the underlying samples; an empty sample
/// set summarizes to all-zero with `count == 0` (distinguishable from a
/// real all-zero distribution by the count).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricSummary {
    /// Number of samples summarized.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (linear-interpolated, as [`Samples::percentile`]).
    pub p50: f64,
    /// 90th percentile (linear-interpolated).
    pub p90: f64,
    /// 99th percentile (linear-interpolated).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl MetricSummary {
    /// Summarize a sample set. The input is cloned so callers can
    /// summarize borrowed report fields without mutating them (percentile
    /// queries sort in place).
    pub fn of(samples: &Samples) -> Self {
        if samples.is_empty() {
            return MetricSummary::default();
        }
        let mut s = samples.clone();
        MetricSummary {
            count: s.len() as u64,
            mean: s.mean().unwrap_or(0.0),
            min: s.min().unwrap_or(0.0),
            p50: s.percentile(50.0).unwrap_or(0.0),
            p90: s.percentile(90.0).unwrap_or(0.0),
            p99: s.percentile(99.0).unwrap_or(0.0),
            max: s.max().unwrap_or(0.0),
        }
    }

    /// Summarize a plain slice of values.
    pub fn of_slice(values: &[f64]) -> Self {
        Self::of(&values.iter().copied().collect())
    }

    /// The summary as `(quantile, value)` points — the staircase a CDF
    /// figure can plot when only the compact summary survives (campaign
    /// result rows persist summaries, not raw samples). Empty when the
    /// summary covers no samples.
    ///
    /// The destructure is exhaustive on purpose: adding a field to
    /// `MetricSummary` without deciding whether figures plot it is a
    /// compile error here, not a silently poorer figure.
    pub fn quantile_points(&self) -> Vec<(f64, f64)> {
        let MetricSummary {
            count,
            mean: _, // not a quantile; figures carry it separately
            min,
            p50,
            p90,
            p99,
            max,
        } = *self;
        if count == 0 {
            return Vec::new();
        }
        vec![(0.0, min), (0.5, p50), (0.9, p90), (0.99, p99), (1.0, max)]
    }
}

impl std::fmt::Display for MetricSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summarizes_to_zero_count() {
        let s = MetricSummary::of(&Samples::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn summary_matches_exact_percentiles() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = MetricSummary::of_slice(&values);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.5, "linear interpolation over n-1 ranks");
        assert!((s.p99 - 99.01).abs() < 1e-9);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_points_follow_the_summary() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = MetricSummary::of_slice(&values);
        let pts = s.quantile_points();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (0.0, s.min));
        assert_eq!(pts[2], (0.9, s.p90));
        assert_eq!(pts[4], (1.0, s.max));
        for w in pts.windows(2) {
            assert!(w[1].0 > w[0].0 && w[1].1 >= w[0].1, "monotone staircase");
        }
        assert!(MetricSummary::default().quantile_points().is_empty());
    }

    #[test]
    fn of_does_not_mutate_the_source() {
        let samples: Samples = [3.0, 1.0, 2.0].into_iter().collect();
        let before: Vec<f64> = samples.values().to_vec();
        let _ = MetricSummary::of(&samples);
        assert_eq!(samples.values(), &before[..], "source order preserved");
    }
}
