//! Deadline accounting for partition-aggregate (incast) workloads.
//!
//! Each aggregation request must gather every worker's response within a
//! deadline; the tracker records per-request completion times against
//! that deadline and reports the miss count and fraction.

/// Accumulates request completion times and counts deadline misses.
#[derive(Debug, Default, Clone)]
pub struct DeadlineTracker {
    total: u64,
    misses: u64,
    elapsed_ms: Vec<f64>,
}

impl DeadlineTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed request: `elapsed_ms` against `deadline_ms`.
    /// A request that takes strictly longer than its deadline is a miss.
    pub fn record(&mut self, elapsed_ms: f64, deadline_ms: f64) {
        self.total += 1;
        if elapsed_ms > deadline_ms {
            self.misses += 1;
        }
        self.elapsed_ms.push(elapsed_ms);
    }

    /// Requests recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Requests that blew their deadline.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of requests that missed (0.0 when none were recorded).
    pub fn miss_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses as f64 / self.total as f64
        }
    }

    /// Completion times in recording order, milliseconds.
    pub fn elapsed_ms(&self) -> &[f64] {
        &self.elapsed_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_hits_and_misses() {
        let mut t = DeadlineTracker::new();
        t.record(5.0, 10.0);
        t.record(10.0, 10.0); // exactly on time is a hit
        t.record(10.001, 10.0);
        assert_eq!(t.total(), 3);
        assert_eq!(t.misses(), 1);
        assert!((t.miss_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.elapsed_ms(), &[5.0, 10.0, 10.001]);
    }

    #[test]
    fn empty_tracker_has_zero_miss_fraction() {
        let t = DeadlineTracker::new();
        assert_eq!(t.total(), 0);
        assert_eq!(t.miss_fraction(), 0.0);
        assert!(t.elapsed_ms().is_empty());
    }
}
