//! Accumulating sample sets with exact percentile queries.

/// A growable collection of `f64` samples supporting mean/min/max and exact
/// percentiles. Percentile queries sort lazily and cache the sorted order
/// until the next insertion.
/// # Example
///
/// ```
/// use presto_metrics::Samples;
/// let mut s: Samples = [5.0, 1.0, 3.0].into_iter().collect();
/// assert_eq!(s.median(), Some(3.0));
/// assert_eq!(s.percentile(100.0), Some(5.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Add one sample. Non-finite values are a logic error upstream and are
    /// rejected with a panic in debug builds, skipped in release.
    #[inline]
    pub fn add(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample {v}");
        if !v.is_finite() {
            return;
        }
        self.values.push(v);
        self.sorted = false;
    }

    /// Absorb all samples from `other`.
    pub fn extend_from(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no samples were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Exact percentile with linear interpolation between order statistics
    /// (the same convention as numpy's default). `p` is in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        self.ensure_sorted();
        let n = self.values.len();
        if n == 1 {
            return Some(self.values[0]);
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Standard deviation (population), or `None` when empty.
    pub fn stddev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        Some(var.sqrt())
    }

    /// Borrow the raw samples (unsorted insertion order is not preserved
    /// once a percentile query has sorted them).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The `k` largest samples, descending — Fig 1 reports the top-10
    /// flowlet sizes.
    pub fn top_k(&mut self, k: usize) -> Vec<f64> {
        self.ensure_sorted();
        self.values.iter().rev().take(k).copied().collect()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_returns_none() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.stddev(), None);
    }

    #[test]
    fn basic_stats() {
        let mut s: Samples = [4.0, 1.0, 3.0, 2.0].into_iter().collect();
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.sum(), 10.0);
        assert_eq!(s.median(), Some(2.5));
    }

    #[test]
    fn percentile_interpolates() {
        let mut s: Samples = (1..=5).map(|v| v as f64).collect();
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(5.0));
        assert_eq!(s.percentile(50.0), Some(3.0));
        assert_eq!(s.percentile(25.0), Some(2.0));
        // 10th percentile of [1..5]: rank 0.4 -> 1.4
        assert!((s.percentile(10.0).unwrap() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_sample() {
        let mut s: Samples = [7.0].into_iter().collect();
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(s.percentile(p), Some(7.0));
        }
    }

    #[test]
    fn tail_percentiles_monotone() {
        let mut s: Samples = (0..1000).map(|v| (v as f64).sqrt()).collect();
        let p50 = s.percentile(50.0).unwrap();
        let p90 = s.percentile(90.0).unwrap();
        let p99 = s.percentile(99.0).unwrap();
        let p999 = s.percentile(99.9).unwrap();
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
    }

    #[test]
    fn insertion_after_query_resorts() {
        let mut s: Samples = [5.0, 1.0].into_iter().collect();
        assert_eq!(s.median(), Some(3.0));
        s.add(0.0);
        assert_eq!(s.median(), Some(1.0));
    }

    #[test]
    fn top_k_descending() {
        let mut s: Samples = [3.0, 9.0, 1.0, 7.0].into_iter().collect();
        assert_eq!(s.top_k(2), vec![9.0, 7.0]);
        assert_eq!(s.top_k(10), vec![9.0, 7.0, 3.0, 1.0]);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let s: Samples = [4.0; 10].into_iter().collect();
        assert_eq!(s.stddev(), Some(0.0));
    }

    #[test]
    fn extend_from_merges() {
        let mut a: Samples = [1.0, 2.0].into_iter().collect();
        let b: Samples = [3.0].into_iter().collect();
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.max(), Some(3.0));
    }
}
