//! Log-scale histograms.
//!
//! Latency and size distributions in datacenter measurements span 4-6
//! orders of magnitude; a log₂-bucketed histogram captures them compactly
//! with bounded relative error, without retaining every sample the way
//! [`crate::Samples`] does. Used by long-running experiments where exact
//! percentiles over millions of samples would be wasteful.

/// A histogram with logarithmic (base-2) buckets over `u64` values.
///
/// Bucket `i` covers `[2^i, 2^(i+1))`; value 0 has its own bucket.
/// Quantile queries interpolate linearly inside a bucket, giving a
/// worst-case relative error of 2× — adequate for tail reporting at the
/// scales involved (ns → s).
/// # Example
///
/// ```
/// use presto_metrics::LogHistogram;
/// let mut h = LogHistogram::new();
/// for us in [100u64, 120, 90, 4000] {
///     h.record(us);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(1.0).unwrap() >= 2048);
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    zero: u64,
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            zero: 0,
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0 {
            self.zero += 1;
        } else {
            self.buckets[63 - v.leading_zeros() as usize] += 1;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile (`q ∈ [0, 1]`), linear within the bucket.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        assert!((0.0..=1.0).contains(&q));
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.zero;
        if seen >= target {
            return Some(0);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let into = (target - seen) as f64 / c as f64;
                let lo = 1u64 << i;
                let hi = if i == 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                let est = lo as f64 + into * (hi - lo) as f64;
                // Clamp into the recorded range for tighter tails.
                return Some((est as u64).clamp(self.min, self.max));
            }
            seen += c;
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        self.zero += other.zero;
        for i in 0..64 {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if self.zero > 0 {
            out.push((0, self.zero));
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                out.push((1u64 << i, c));
            }
        }
        out
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30, 0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(15.0));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((250..=1000).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((500..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn zero_bucket_handled() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.record(0);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.quantile(0.5), Some(0));
        assert!(h.quantile(0.95).unwrap() >= 524_288);
    }

    #[test]
    fn merge_combines() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(8);
        b.record(1024);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(8));
        assert_eq!(a.max(), Some(1024));
        assert_eq!(a.nonzero_buckets().len(), 2);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        let mut h = LogHistogram::new();
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        let b = h.nonzero_buckets();
        assert_eq!(b, vec![(1, 1), (2, 2), (4, 1)]);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(h.quantile(0.9).unwrap() > 1 << 62);
    }
}
