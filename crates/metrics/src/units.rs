//! Unit conversions shared by every experiment harness.

/// Bits per second in one gigabit per second.
pub const GBPS: u64 = 1_000_000_000;
/// Bits per second in one megabit per second.
pub const MBPS: u64 = 1_000_000;
/// Bytes in one kibibyte.
pub const KB: u64 = 1024;
/// Bytes in one mebibyte.
pub const MB: u64 = 1024 * 1024;
/// Bytes in one gibibyte.
pub const GB: u64 = 1024 * 1024 * 1024;

/// Convert a byte count transferred over `secs` seconds into Gbps.
pub fn gbps(bytes: u64, secs: f64) -> f64 {
    debug_assert!(secs > 0.0);
    (bytes as f64 * 8.0) / secs / 1e9
}

/// Human-readable byte size (binary units), e.g. `"64.0KB"`.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= GB {
        format!("{:.1}GB", b / GB as f64)
    } else if bytes >= MB {
        format!("{:.1}MB", b / MB as f64)
    } else if bytes >= KB {
        format!("{:.1}KB", b / KB as f64)
    } else {
        format!("{bytes}B")
    }
}

/// Format a rate in bits/sec, e.g. `"10.0Gbps"`.
pub fn fmt_rate(bits_per_sec: u64) -> String {
    let r = bits_per_sec as f64;
    if bits_per_sec >= GBPS {
        format!("{:.1}Gbps", r / 1e9)
    } else if bits_per_sec >= MBPS {
        format!("{:.1}Mbps", r / 1e6)
    } else {
        format!("{bits_per_sec}bps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_conversion() {
        // 1.25 GB in one second = 10 Gbit/s.
        assert!((gbps(1_250_000_000, 1.0) - 10.0).abs() < 1e-9);
        assert!((gbps(1_250_000_000, 2.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(64 * KB), "64.0KB");
        assert_eq!(fmt_bytes(3 * MB / 2), "1.5MB");
        assert_eq!(fmt_bytes(2 * GB), "2.0GB");
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(10 * GBPS), "10.0Gbps");
        assert_eq!(fmt_rate(100 * MBPS), "100.0Mbps");
        assert_eq!(fmt_rate(500), "500bps");
    }
}
