//! Plain-text table rendering for the benchmark harnesses.
//!
//! Every experiment binary prints its results as an aligned ASCII table so
//! that `cargo bench` output can be compared against the paper's tables and
//! figure series directly.

/// A simple column-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must have as many cells as the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns, a header rule, and two-space gutters.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align labels.
                let numeric = cell
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_digit() || c == '-' || c == '+' || c == '.')
                    .unwrap_or(false);
                if numeric {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            while line.ends_with(' ') {
                line.pop();
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with `prec` decimals — shorthand for table cells.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Format a value as a signed percentage change relative to `base`, the
/// convention of the paper's Tables 1 and 2 ("negative numbers imply
/// shorter FCT").
pub fn pct_vs(base: f64, v: f64) -> String {
    if base == 0.0 {
        return "n/a".to_string();
    }
    let delta = (v - base) / base * 100.0;
    format!("{delta:+.0}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["scheme", "tput"]);
        t.row(["ECMP", "5.1"]);
        t.row(["Presto", "9.3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("scheme"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("ECMP"));
        assert!(lines[3].contains("9.3"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn numeric_cells_right_align() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1.0"]);
        t.row(["y", "100.0"]);
        let s = t.render();
        assert!(s.contains("  1.0"), "short numbers padded left:\n{s}");
    }

    #[test]
    fn pct_vs_formats_signed() {
        assert_eq!(pct_vs(2.0, 1.0), "-50%");
        assert_eq!(pct_vs(2.0, 3.0), "+50%");
        assert_eq!(pct_vs(2.0, 2.0), "+0%");
        assert_eq!(pct_vs(0.0, 2.0), "n/a");
    }

    #[test]
    fn float_helper() {
        assert_eq!(f(3.456, 2), "3.46");
        assert_eq!(f(1.0, 0), "1");
    }
}
