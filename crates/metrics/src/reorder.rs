//! Packet-reordering metrics (RFC 4737 style).
//!
//! The paper quantifies reordering two ways: the fraction of reordered
//! packets in a connection (§5's flowlet analysis: "13%-29% packets in the
//! connection are reordered") and the out-of-order segment count of Fig 5a.
//! This module provides the sequence-level metrics; the flowcell-level
//! metric lives in `presto-testbed`'s report (it needs flowcell IDs).

/// Reordering statistics over a sequence of arrival "sequence numbers"
/// (byte offsets or packet indices — any monotone-when-in-order key).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderStats {
    /// Total observations.
    pub total: usize,
    /// RFC 4737 Type-P reordered count: arrivals with a key smaller than
    /// some earlier arrival's key.
    pub reordered: usize,
    /// Largest displacement (in positions) of any reordered arrival — the
    /// "reordering extent": how much buffering would restore order.
    pub max_extent: usize,
}

impl ReorderStats {
    /// Fraction of reordered arrivals (0 when empty).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.reordered as f64 / self.total as f64
        }
    }
}

/// Compute reordering statistics for an arrival sequence.
///
/// An arrival is *reordered* (RFC 4737) if its key is less than the
/// maximum key seen before it. Its *extent* is the distance back to the
/// earliest prior arrival with a larger key.
/// # Example
///
/// ```
/// use presto_metrics::reorder_stats;
/// let s = reorder_stats(&[1, 3, 2, 4]);
/// assert_eq!(s.reordered, 1);
/// assert_eq!(s.fraction(), 0.25);
/// ```
pub fn reorder_stats(keys: &[u64]) -> ReorderStats {
    let mut max_seen = 0u64;
    let mut reordered = 0usize;
    let mut max_extent = 0usize;
    for (i, &k) in keys.iter().enumerate() {
        if i > 0 && k < max_seen {
            reordered += 1;
            // Walk back to the first arrival that should have come later.
            let mut extent = 0;
            for j in (0..i).rev() {
                if keys[j] > k {
                    extent = i - j;
                } else {
                    break;
                }
            }
            max_extent = max_extent.max(extent);
        }
        max_seen = max_seen.max(k);
    }
    ReorderStats {
        total: keys.len(),
        reordered,
        max_extent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_has_no_reordering() {
        let s = reorder_stats(&[1, 2, 3, 4, 5]);
        assert_eq!(s.reordered, 0);
        assert_eq!(s.max_extent, 0);
        assert_eq!(s.fraction(), 0.0);
    }

    #[test]
    fn single_swap() {
        // 3 arrives before 2: one reordered arrival, extent 1.
        let s = reorder_stats(&[1, 3, 2, 4]);
        assert_eq!(s.reordered, 1);
        assert_eq!(s.max_extent, 1);
        assert_eq!(s.fraction(), 0.25);
    }

    #[test]
    fn late_straggler_has_large_extent() {
        // 1 delayed behind four later packets.
        let s = reorder_stats(&[2, 3, 4, 5, 1]);
        assert_eq!(s.reordered, 1);
        assert_eq!(s.max_extent, 4);
    }

    #[test]
    fn interleaved_streams() {
        // Two cells interleaving: 0,4,1,5,2,6,3,7 — every low-cell packet
        // after a high-cell one is reordered.
        let s = reorder_stats(&[0, 4, 1, 5, 2, 6, 3, 7]);
        assert_eq!(s.reordered, 3); // 1, 2, 3
        assert!(s.max_extent >= 1);
    }

    #[test]
    fn duplicates_are_not_reordered() {
        // Equal keys (retransmissions) don't count: strict less-than.
        let s = reorder_stats(&[1, 2, 2, 3]);
        assert_eq!(s.reordered, 0);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(reorder_stats(&[]).total, 0);
        assert_eq!(reorder_stats(&[9]).reordered, 0);
    }
}
