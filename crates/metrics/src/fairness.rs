//! Jain's fairness index.
//!
//! The paper reports fairness over flow throughputs (Figs 9b, 12b) using
//! the index of Jain, Chiu & Hawe: `(Σxᵢ)² / (n · Σxᵢ²)`, which is 1 when
//! all allocations are equal and `1/n` when one flow starves the rest.

/// Jain's fairness index over a set of allocations.
///
/// Returns 1.0 for an empty or all-zero input (nothing is unfair about
/// nothing). Negative allocations are a logic error and panic in debug
/// builds.
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    debug_assert!(allocations.iter().all(|&x| x >= 0.0));
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (allocations.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_allocations_are_perfectly_fair() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.1; 7]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn starvation_approaches_one_over_n() {
        let idx = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn partial_imbalance_is_intermediate() {
        let idx = jain_index(&[8.0, 4.0]);
        // (12)^2 / (2 * 80) = 144/160 = 0.9
        assert!((idx - 0.9).abs() < 1e-12);
    }

    #[test]
    fn scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[3.0]), 1.0);
    }
}
