//! Trace-driven workload (§6, Table 1).
//!
//! The paper samples flow sizes and inter-arrival times measured by
//! Kandula et al. (IMC'09) and scales sizes ×10. The traces themselves are
//! proprietary, so this module generates from an empirical mixture with
//! the published shape: the vast majority of flows are mice of a few KB,
//! while a small fraction of elephants carries most of the bytes. Each
//! server continuously samples a size and an exponential inter-arrival gap
//! and sends to a random receiver outside its own rack.

use presto_simcore::rng::DetRng;
use presto_simcore::{SimDuration, SimTime};

/// Empirical flow-size mixture, already ×10-scaled like the paper's runs.
/// Segments are (probability, lo_bytes, hi_bytes), log-uniform inside.
const SIZE_MIX: &[(f64, f64, f64)] = &[
    (0.50, 1.0e3, 1.0e4), // small RPC-ish mice
    (0.30, 1.0e4, 1.0e5), // larger mice
    (0.15, 1.0e5, 1.0e6), // medium flows
    (0.05, 1.0e6, 3.0e7), // elephants: 1-30 MB
];

/// One generated flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFlow {
    /// Start time.
    pub at: SimTime,
    /// Destination host index.
    pub dst: usize,
    /// Flow size in bytes.
    pub bytes: u64,
}

/// Per-server trace-driven generator.
#[derive(Debug)]
pub struct TraceWorkload {
    rng: DetRng,
    src: usize,
    n_hosts: usize,
    hosts_per_pod: usize,
    mean_interarrival: SimDuration,
    next_at: SimTime,
}

impl TraceWorkload {
    /// A generator for server `src`. `mean_interarrival` controls offered
    /// load (the paper scales load via the size distribution; we expose
    /// the arrival knob as well).
    pub fn new(
        seed: u64,
        src: usize,
        n_hosts: usize,
        hosts_per_pod: usize,
        mean_interarrival: SimDuration,
    ) -> Self {
        assert!(n_hosts > hosts_per_pod);
        let mut rng = DetRng::new(seed).for_stream(src as u64);
        let first = SimDuration::from_secs_f64(rng.exp(mean_interarrival.as_secs_f64()));
        TraceWorkload {
            rng,
            src,
            n_hosts,
            hosts_per_pod,
            mean_interarrival,
            next_at: SimTime::ZERO + first,
        }
    }

    /// Sample a flow size from the empirical mixture.
    pub fn sample_size(rng: &mut DetRng) -> u64 {
        let u = rng.gen_f64();
        let mut acc = 0.0;
        for &(p, lo, hi) in SIZE_MIX {
            acc += p;
            if u < acc {
                // Log-uniform within the segment.
                let x = lo.ln() + rng.gen_f64() * (hi.ln() - lo.ln());
                return x.exp() as u64;
            }
        }
        SIZE_MIX.last().map(|&(_, _, hi)| hi as u64).unwrap()
    }

    /// The next flow this server originates.
    pub fn next_flow(&mut self) -> TraceFlow {
        let at = self.next_at;
        let gap = SimDuration::from_secs_f64(self.rng.exp(self.mean_interarrival.as_secs_f64()));
        self.next_at = at + gap;
        let pod = self.src / self.hosts_per_pod;
        let dst = loop {
            let d = self.rng.gen_range(self.n_hosts as u64) as usize;
            if d / self.hosts_per_pod != pod {
                break d;
            }
        };
        TraceFlow {
            at,
            dst,
            bytes: Self::sample_size(&mut self.rng),
        }
    }

    /// All flows starting before `horizon`.
    pub fn flows_until(&mut self, horizon: SimTime) -> Vec<TraceFlow> {
        let mut out = Vec::new();
        while self.next_at < horizon {
            out.push(self.next_flow());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes(n: usize) -> Vec<u64> {
        let mut rng = DetRng::new(42);
        (0..n)
            .map(|_| TraceWorkload::sample_size(&mut rng))
            .collect()
    }

    #[test]
    fn size_mix_probabilities_sum_to_one() {
        let total: f64 = SIZE_MIX.iter().map(|&(p, _, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn most_flows_are_mice() {
        let s = sizes(20_000);
        let mice = s.iter().filter(|&&b| b < 100_000).count() as f64 / s.len() as f64;
        assert!((0.70..0.90).contains(&mice), "mice fraction {mice}");
    }

    #[test]
    fn elephants_carry_most_bytes() {
        let s = sizes(20_000);
        let total: u64 = s.iter().sum();
        let elephant_bytes: u64 = s.iter().filter(|&&b| b > 1_000_000).sum();
        let frac = elephant_bytes as f64 / total as f64;
        assert!(frac > 0.5, "elephants carry only {frac}");
    }

    #[test]
    fn sizes_within_mixture_bounds() {
        for b in sizes(5_000) {
            assert!((1_000..=30_000_000).contains(&b), "size {b}");
        }
    }

    #[test]
    fn arrivals_are_increasing_and_exponential_ish() {
        let mut w = TraceWorkload::new(7, 0, 16, 4, SimDuration::from_millis(10));
        let flows = w.flows_until(SimTime::from_secs(20));
        assert!(
            flows.len() > 1500 && flows.len() < 2500,
            "{} arrivals",
            flows.len()
        );
        for pair in flows.windows(2) {
            assert!(pair[1].at >= pair[0].at);
        }
    }

    #[test]
    fn destinations_avoid_own_pod() {
        let mut w = TraceWorkload::new(9, 5, 16, 4, SimDuration::from_millis(1));
        for f in w.flows_until(SimTime::from_secs(1)) {
            assert_ne!(f.dst / 4, 5 / 4);
        }
    }

    #[test]
    fn per_source_streams_differ_but_are_reproducible() {
        let mut a = TraceWorkload::new(1, 0, 16, 4, SimDuration::from_millis(1));
        let mut a2 = TraceWorkload::new(1, 0, 16, 4, SimDuration::from_millis(1));
        let mut b = TraceWorkload::new(1, 1, 16, 4, SimDuration::from_millis(1));
        let fa = a.next_flow();
        assert_eq!(fa, a2.next_flow());
        assert_ne!(fa, b.next_flow());
    }
}
