//! Empirical flow-size distributions.
//!
//! The datacenter-measurement literature the paper samples from reports
//! flow sizes as empirical CDFs. This module provides a reusable
//! [`EmpiricalCdf`] sampler plus the two canonical published mixes —
//! *web search* (DCTCP's production cluster) and *data mining* (VL2's) —
//! so experiments can be driven by either, in addition to the default
//! IMC'09-shaped mixture in [`crate::trace`].

use presto_simcore::rng::DetRng;
use presto_simcore::{SimDuration, SimTime};

use crate::spec::{FlowSpec, MICE_THRESHOLD_BYTES};

/// An empirical CDF given as `(value, cumulative_probability)` knots,
/// sampled by inverse transform with log-linear interpolation between
/// knots (flow sizes are naturally log-distributed).
/// # Example
///
/// ```
/// use presto_workloads::dists::web_search;
/// use presto_simcore::rng::DetRng;
/// let cdf = web_search();
/// let mut rng = DetRng::new(1);
/// let size = cdf.sample(&mut rng);
/// assert!(size > 0.0 && size <= 20_000_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    knots: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Build from knots; probabilities must be strictly increasing and end
    /// at 1.0, values must be positive and non-decreasing.
    pub fn new(knots: &[(f64, f64)]) -> Self {
        assert!(knots.len() >= 2, "need at least two knots");
        for w in knots.windows(2) {
            assert!(w[0].1 < w[1].1, "probabilities must increase");
            assert!(w[0].0 <= w[1].0, "values must be non-decreasing");
            assert!(w[0].0 > 0.0, "values must be positive");
        }
        assert!(
            (knots.last().unwrap().1 - 1.0).abs() < 1e-9,
            "last probability must be 1.0"
        );
        EmpiricalCdf {
            knots: knots.to_vec(),
        }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut DetRng) -> f64 {
        let u = rng.gen_f64();
        // First knot at or above u.
        let mut prev = (self.knots[0].0, 0.0);
        for &(v, p) in &self.knots {
            if u <= p {
                let (v0, p0) = prev;
                let frac = if p > p0 { (u - p0) / (p - p0) } else { 1.0 };
                // Log-linear interpolation between knot values.
                let lv = v0.ln() + frac * (v.ln() - v0.ln());
                return lv.exp();
            }
            prev = (v, p);
        }
        self.knots.last().unwrap().0
    }

    /// The distribution's mean, estimated by numeric integration over the
    /// knots (log-linear segments).
    pub fn approx_mean(&self) -> f64 {
        // Sample-free estimate: midpoint value of each segment weighted by
        // its probability mass.
        let mut mean = 0.0;
        let mut prev = (self.knots[0].0, 0.0);
        for &(v, p) in &self.knots {
            let (v0, p0) = prev;
            let mass = p - p0;
            let mid = (v0.ln() + v.ln()) / 2.0;
            mean += mass * mid.exp();
            prev = (v, p);
        }
        mean
    }
}

/// The "web search" workload CDF (Alizadeh et al., DCTCP): mostly small
/// query/response flows with a tail of multi-MB background transfers.
pub fn web_search() -> EmpiricalCdf {
    EmpiricalCdf::new(&[
        (6_000.0, 0.15),
        (13_000.0, 0.30),
        (19_000.0, 0.45),
        (33_000.0, 0.60),
        (53_000.0, 0.70),
        (133_000.0, 0.80),
        (667_000.0, 0.90),
        (1_333_000.0, 0.95),
        (6_667_000.0, 0.98),
        (20_000_000.0, 1.0),
    ])
}

/// The "data mining" workload CDF (Greenberg et al., VL2): extremely
/// heavy-tailed — half the flows are single-packet, yet >80% of bytes live
/// in flows over 100 MB (truncated here at 100 MB for simulation scale).
pub fn data_mining() -> EmpiricalCdf {
    EmpiricalCdf::new(&[
        (100.0, 0.50),
        (1_000.0, 0.60),
        (10_000.0, 0.70),
        (100_000.0, 0.80),
        (1_000_000.0, 0.90),
        (10_000_000.0, 0.95),
        (100_000_000.0, 1.0),
    ])
}

/// Open-loop Poisson flow arrivals with sizes drawn from an empirical CDF
/// — the trace-replay shape of Table 1 generalized to any size mix.
///
/// Every host is an independent source: inter-arrival gaps are exponential
/// with mean `mean_gap`, destinations are drawn uniformly among hosts in
/// *other* pods (`hosts_per_pod` consecutive indices form a pod), and flow
/// sizes come from `cdf` clamped to `[clamp.0, clamp.1]` bytes so short
/// simulations finish a useful fraction of the tail. Flows under the
/// mice threshold are marked for FCT measurement.
///
/// Per-source RNG sub-streams (`DetRng::for_stream`) make the pattern
/// deterministic in `seed` and insensitive to host iteration order.
pub fn poisson_flows(
    cdf: &EmpiricalCdf,
    n_hosts: usize,
    hosts_per_pod: usize,
    seed: u64,
    horizon: SimTime,
    mean_gap: SimDuration,
    clamp: (u64, u64),
) -> Vec<FlowSpec> {
    assert!(
        hosts_per_pod >= 1 && n_hosts > hosts_per_pod,
        "need ≥ 2 pods"
    );
    let mut flows = Vec::new();
    for src in 0..n_hosts {
        let mut rng = DetRng::new(seed ^ 0x317).for_stream(src as u64);
        let mut at = SimTime::ZERO + SimDuration::from_secs_f64(rng.exp(mean_gap.as_secs_f64()));
        while at < horizon {
            let dst = loop {
                let d = rng.gen_range(n_hosts as u64) as usize;
                if d / hosts_per_pod != src / hosts_per_pod {
                    break d;
                }
            };
            let bytes = (cdf.sample(&mut rng) as u64).clamp(clamp.0, clamp.1);
            flows.push(FlowSpec {
                src,
                dst,
                start: at,
                bytes: Some(bytes),
                measure_fct: bytes < MICE_THRESHOLD_BYTES,
            });
            at += SimDuration::from_secs_f64(rng.exp(mean_gap.as_secs_f64()));
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(cdf: &EmpiricalCdf, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::new(seed);
        (0..n).map(|_| cdf.sample(&mut rng)).collect()
    }

    #[test]
    fn samples_respect_bounds() {
        let cdf = web_search();
        for s in samples(&cdf, 10_000, 1) {
            assert!((1.0..=20_000_000.0).contains(&s), "sample {s}");
        }
    }

    #[test]
    fn web_search_median_matches_knots() {
        let cdf = web_search();
        let mut v = samples(&cdf, 20_000, 2);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        // The 45%/60% knots are 19KB/33KB: the median lies between them.
        assert!((15_000.0..40_000.0).contains(&median), "median {median}");
    }

    #[test]
    fn data_mining_is_mice_dominated_but_byte_heavy() {
        let cdf = data_mining();
        let v = samples(&cdf, 50_000, 3);
        let mice = v.iter().filter(|&&x| x < 10_000.0).count() as f64 / v.len() as f64;
        assert!(mice > 0.6, "mice fraction {mice}");
        let total: f64 = v.iter().sum();
        let big: f64 = v.iter().filter(|&&x| x > 1_000_000.0).sum();
        assert!(big / total > 0.6, "elephant byte share {}", big / total);
    }

    #[test]
    fn quantiles_track_knot_probabilities() {
        let cdf = web_search();
        let mut v = samples(&cdf, 50_000, 4);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // 80th percentile knot is 133KB.
        let p80 = v[(v.len() as f64 * 0.8) as usize];
        assert!((90_000.0..200_000.0).contains(&p80), "p80 {p80}");
    }

    #[test]
    fn approx_mean_is_sane() {
        let cdf = web_search();
        let v = samples(&cdf, 100_000, 5);
        let emp = v.iter().sum::<f64>() / v.len() as f64;
        let est = cdf.approx_mean();
        assert!(
            (est / emp - 1.0).abs() < 0.35,
            "estimate {est} vs empirical {emp}"
        );
    }

    #[test]
    #[should_panic(expected = "probabilities must increase")]
    fn rejects_non_increasing_probability() {
        let _ = EmpiricalCdf::new(&[(10.0, 0.5), (20.0, 0.5), (30.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "last probability")]
    fn rejects_incomplete_cdf() {
        let _ = EmpiricalCdf::new(&[(10.0, 0.5), (20.0, 0.9)]);
    }

    #[test]
    fn deterministic_per_seed() {
        let cdf = data_mining();
        assert_eq!(samples(&cdf, 100, 7), samples(&cdf, 100, 7));
        assert_ne!(samples(&cdf, 100, 7), samples(&cdf, 100, 8));
    }

    #[test]
    fn poisson_flows_respect_pods_horizon_and_clamp() {
        let horizon = SimTime::from_millis(50);
        let flows = poisson_flows(
            &web_search(),
            16,
            4,
            9,
            horizon,
            SimDuration::from_millis(2),
            (500, 20_000_000),
        );
        assert!(!flows.is_empty());
        for f in &flows {
            assert_ne!(f.src / 4, f.dst / 4, "destinations are inter-pod");
            assert!(f.start < horizon);
            let b = f.bytes.unwrap();
            assert!((500..=20_000_000).contains(&b));
            assert_eq!(f.measure_fct, b < MICE_THRESHOLD_BYTES);
        }
        // Deterministic in the seed.
        let again = poisson_flows(
            &web_search(),
            16,
            4,
            9,
            horizon,
            SimDuration::from_millis(2),
            (500, 20_000_000),
        );
        assert_eq!(flows, again);
    }
}
