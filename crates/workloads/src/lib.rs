//! Workload generators for the Presto evaluation.
//!
//! Reproduces the paper's traffic mixes (§4, §6):
//!
//! * [`patterns`] — the synthetic communication patterns: *shuffle* (every
//!   server sends 1 GB to every other, two at a time), *stride(8)*
//!   (`server[i] → server[(i+8) mod 16]`), *random* (random inter-pod
//!   destination) and *random bijection*;
//! * [`trace`] — the trace-driven workload: heavy-tailed flow sizes shaped
//!   after the IMC'09 datacenter measurements the paper samples from,
//!   scaled ×10 as in §6, with exponential inter-arrivals;
//! * [`northsouth`] — WAN-bound cross traffic with the flow-size mix of
//!   web-service deployments (the Table 2 experiment);
//! * [`dists`] — reusable empirical flow-size CDFs (the published
//!   web-search and data-mining mixes) for driving custom workloads;
//! * [`spec`] — the flow/probe descriptors the testbed executes.
//!
//! Hosts are plain indices here; the testbed maps them onto fabric
//! attachment points.

#![warn(missing_docs)]

pub mod dists;
pub mod northsouth;
pub mod patterns;
pub mod spec;
pub mod trace;

pub use dists::{data_mining, poisson_flows, web_search, EmpiricalCdf};
pub use spec::{FlowSpec, MICE_FLOW_BYTES, MICE_INTERVAL_MS};
pub use trace::TraceWorkload;
