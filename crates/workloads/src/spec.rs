//! Flow descriptors the testbed executes.

use presto_simcore::SimTime;

/// Mice flow size used throughout the paper's latency experiments: 50 KB.
pub const MICE_FLOW_BYTES: u64 = 50 * 1000;

/// Mice are sent every 100 ms (§4).
pub const MICE_INTERVAL_MS: u64 = 100;

/// Flows below this are "mice" in the trace-driven analysis (§6).
pub const MICE_THRESHOLD_BYTES: u64 = 100 * 1000;

/// Flows above this are "elephants" in the trace-driven analysis (§6).
pub const ELEPHANT_THRESHOLD_BYTES: u64 = 1000 * 1000;

/// One flow the testbed should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Sending host index.
    pub src: usize,
    /// Receiving host index.
    pub dst: usize,
    /// When the flow starts.
    pub start: SimTime,
    /// Bytes to transfer; `None` = elephant running for the whole
    /// experiment.
    pub bytes: Option<u64>,
    /// Measure flow completion time (mice) rather than throughput.
    pub measure_fct: bool,
}

impl FlowSpec {
    /// An unbounded elephant starting at `start`.
    pub fn elephant(src: usize, dst: usize, start: SimTime) -> Self {
        FlowSpec {
            src,
            dst,
            start,
            bytes: None,
            measure_fct: false,
        }
    }

    /// A finite transfer whose FCT is measured.
    pub fn mouse(src: usize, dst: usize, start: SimTime, bytes: u64) -> Self {
        FlowSpec {
            src,
            dst,
            start,
            bytes: Some(bytes),
            measure_fct: true,
        }
    }

    /// A finite bulk transfer measured for throughput (shuffle chunks).
    pub fn bulk(src: usize, dst: usize, start: SimTime, bytes: u64) -> Self {
        FlowSpec {
            src,
            dst,
            start,
            bytes: Some(bytes),
            measure_fct: false,
        }
    }

    /// Whether the trace analysis classifies this flow as a mouse.
    pub fn is_mouse(&self) -> bool {
        matches!(self.bytes, Some(b) if b < MICE_THRESHOLD_BYTES)
    }

    /// Whether the trace analysis classifies this flow as an elephant.
    pub fn is_elephant(&self) -> bool {
        match self.bytes {
            None => true,
            Some(b) => b > ELEPHANT_THRESHOLD_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let e = FlowSpec::elephant(0, 1, SimTime::ZERO);
        assert!(e.is_elephant());
        assert!(!e.is_mouse());
        assert!(!e.measure_fct);

        let m = FlowSpec::mouse(0, 1, SimTime::ZERO, MICE_FLOW_BYTES);
        assert!(m.is_mouse());
        assert!(!m.is_elephant());
        assert!(m.measure_fct);

        let b = FlowSpec::bulk(0, 1, SimTime::ZERO, 16 * 1024 * 1024);
        assert!(b.is_elephant());
        assert!(!b.measure_fct);
    }

    #[test]
    fn classification_boundaries() {
        assert!(FlowSpec::mouse(0, 1, SimTime::ZERO, 99_999).is_mouse());
        assert!(!FlowSpec::mouse(0, 1, SimTime::ZERO, 100_000).is_mouse());
        assert!(!FlowSpec::bulk(0, 1, SimTime::ZERO, 1_000_000).is_elephant());
        assert!(FlowSpec::bulk(0, 1, SimTime::ZERO, 1_000_001).is_elephant());
    }
}
