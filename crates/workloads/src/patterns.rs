//! Synthetic communication patterns (§4).

use presto_simcore::rng::DetRng;

/// `server[i] → server[(i+k) mod n]`. The paper uses stride(8) on 16
/// hosts, which forces every flow across the spine layer.
pub fn stride(n_hosts: usize, k: usize) -> Vec<(usize, usize)> {
    assert!(n_hosts > 1 && !k.is_multiple_of(n_hosts));
    (0..n_hosts).map(|i| (i, (i + k) % n_hosts)).collect()
}

/// Each server sends to a random destination *not in its own pod* (rack);
/// multiple senders may pick the same receiver.
pub fn random(n_hosts: usize, hosts_per_pod: usize, rng: &mut DetRng) -> Vec<(usize, usize)> {
    assert!(n_hosts > hosts_per_pod, "need at least two pods");
    (0..n_hosts)
        .map(|src| {
            let pod = src / hosts_per_pod;
            loop {
                let dst = rng.gen_range(n_hosts as u64) as usize;
                if dst / hosts_per_pod != pod {
                    return (src, dst);
                }
            }
        })
        .collect()
}

/// Random bijection: like [`random`] but every host receives from exactly
/// one sender.
pub fn random_bijection(
    n_hosts: usize,
    hosts_per_pod: usize,
    rng: &mut DetRng,
) -> Vec<(usize, usize)> {
    assert!(n_hosts > hosts_per_pod, "need at least two pods");
    // Rejection-sample permutations until none maps within a pod. With
    // pods of 1/4 of hosts this succeeds quickly.
    'outer: loop {
        let mut perm: Vec<usize> = (0..n_hosts).collect();
        rng.shuffle(&mut perm);
        for (src, &dst) in perm.iter().enumerate() {
            if src / hosts_per_pod == dst / hosts_per_pod {
                continue 'outer;
            }
        }
        return perm.into_iter().enumerate().collect();
    }
}

/// Shuffle: every server sends `bytes_per_transfer` to every other server
/// in random order (the Hadoop-shuffle emulation; the paper sends 1 GB to
/// each peer, two transfers at a time). Returns, per source host, its
/// randomized destination order; the testbed runs `concurrency` transfers
/// from each list at a time.
pub fn shuffle_orders(n_hosts: usize, rng: &mut DetRng) -> Vec<Vec<usize>> {
    (0..n_hosts)
        .map(|src| {
            let mut dsts: Vec<usize> = (0..n_hosts).filter(|&d| d != src).collect();
            let mut r = rng.for_stream(src as u64);
            r.shuffle(&mut dsts);
            dsts
        })
        .collect()
}

/// Incast: `fan_in` senders transmit a synchronized burst to one receiver
/// (partition-aggregate traffic; an extension experiment beyond the paper's
/// workloads). Returns the sender indices, excluding the receiver.
pub fn incast_senders(n_hosts: usize, receiver: usize, fan_in: usize) -> Vec<usize> {
    assert!(fan_in < n_hosts, "need at least one non-sender");
    (0..n_hosts)
        .filter(|&h| h != receiver)
        .take(fan_in)
        .collect()
}

/// Ring: `server[i] → server[(i+1) mod n]` over the first `participants`
/// hosts — the per-round transfer set of a ring allreduce, where each
/// member streams a chunk to its clockwise neighbor every round.
pub fn ring(participants: usize) -> Vec<(usize, usize)> {
    assert!(participants > 1, "a ring needs at least two members");
    (0..participants)
        .map(|i| (i, (i + 1) % participants))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride8_matches_paper() {
        let pairs = stride(16, 8);
        assert_eq!(pairs.len(), 16);
        assert_eq!(pairs[0], (0, 8));
        assert_eq!(pairs[8], (8, 0));
        assert_eq!(pairs[15], (15, 7));
        // Every destination is distinct (stride is a bijection).
        let dsts: std::collections::HashSet<usize> = pairs.iter().map(|&(_, d)| d).collect();
        assert_eq!(dsts.len(), 16);
    }

    #[test]
    fn stride_crosses_pods_on_testbed() {
        // With 4 hosts per leaf, stride(8) never stays in-rack.
        for (s, d) in stride(16, 8) {
            assert_ne!(s / 4, d / 4);
        }
    }

    #[test]
    fn random_avoids_own_pod() {
        let mut rng = DetRng::new(5);
        let pairs = random(16, 4, &mut rng);
        assert_eq!(pairs.len(), 16);
        for (s, d) in pairs {
            assert_ne!(s / 4, d / 4, "{s}->{d} stayed in pod");
        }
    }

    #[test]
    fn random_allows_receiver_collisions_eventually() {
        let mut any_collision = false;
        for seed in 0..20 {
            let mut rng = DetRng::new(seed);
            let pairs = random(16, 4, &mut rng);
            let dsts: std::collections::HashSet<usize> = pairs.iter().map(|&(_, d)| d).collect();
            if dsts.len() < 16 {
                any_collision = true;
                break;
            }
        }
        assert!(any_collision, "random should not be a bijection in general");
    }

    #[test]
    fn bijection_is_bijective_and_inter_pod() {
        let mut rng = DetRng::new(7);
        let pairs = random_bijection(16, 4, &mut rng);
        let dsts: std::collections::HashSet<usize> = pairs.iter().map(|&(_, d)| d).collect();
        assert_eq!(dsts.len(), 16);
        for (s, d) in pairs {
            assert_ne!(s / 4, d / 4);
            assert_ne!(s, d);
        }
    }

    #[test]
    fn bijection_is_deterministic_per_seed() {
        let a = random_bijection(16, 4, &mut DetRng::new(3));
        let b = random_bijection(16, 4, &mut DetRng::new(3));
        let c = random_bijection(16, 4, &mut DetRng::new(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn incast_excludes_receiver_and_caps_fan_in() {
        let s = incast_senders(16, 3, 8);
        assert_eq!(s.len(), 8);
        assert!(!s.contains(&3));
        let all = incast_senders(16, 0, 15);
        assert_eq!(all.len(), 15);
    }

    #[test]
    #[should_panic(expected = "non-sender")]
    fn incast_rejects_full_fan_in() {
        let _ = incast_senders(4, 0, 4);
    }

    #[test]
    fn ring_wraps_and_covers_every_member() {
        let r = ring(8);
        assert_eq!(r.len(), 8);
        assert_eq!(r[0], (0, 1));
        assert_eq!(r[7], (7, 0));
        // Every member sends once and receives once.
        let srcs: std::collections::HashSet<usize> = r.iter().map(|&(s, _)| s).collect();
        let dsts: std::collections::HashSet<usize> = r.iter().map(|&(_, d)| d).collect();
        assert_eq!(srcs.len(), 8);
        assert_eq!(dsts.len(), 8);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn ring_rejects_singletons() {
        let _ = ring(1);
    }

    #[test]
    fn shuffle_orders_cover_all_peers() {
        let mut rng = DetRng::new(11);
        let orders = shuffle_orders(16, &mut rng);
        assert_eq!(orders.len(), 16);
        for (src, order) in orders.iter().enumerate() {
            assert_eq!(order.len(), 15);
            assert!(!order.contains(&src));
            let set: std::collections::HashSet<usize> = order.iter().copied().collect();
            assert_eq!(set.len(), 15);
        }
        // Orders differ across sources.
        assert_ne!(orders[0], orders[1]);
    }
}
