//! North-south (WAN) cross traffic (§6, Table 2).
//!
//! The paper attaches one "remote user" to each spine switch, throttled to
//! 100 Mbps to emulate the Internet WAN; every server starts a flow to a
//! random remote user every millisecond, with flow sizes from the web
//! deployment measurements of He et al. (IMC'13) — overwhelmingly small
//! responses with a modest tail.

use presto_simcore::rng::DetRng;
use presto_simcore::{SimDuration, SimTime};

/// WAN rate cap per remote user (100 Mbps).
pub const WAN_RATE_BPS: u64 = 100_000_000;

/// Inter-arrival of north-south flows per server (1 ms).
pub const NS_INTERVAL: SimDuration = SimDuration::from_millis(1);

/// Web-response size mixture: (probability, lo, hi), log-uniform within.
const NS_SIZE_MIX: &[(f64, f64, f64)] = &[
    (0.60, 5.0e2, 1.0e4), // small API/static responses
    (0.30, 1.0e4, 1.0e5), // page-ish payloads
    (0.10, 1.0e5, 2.0e6), // downloads
];

/// One north-south flow.
#[derive(Debug, Clone, Copy)]
pub struct NsFlow {
    /// Start time.
    pub at: SimTime,
    /// Index of the remote user (0..n_remote).
    pub remote: usize,
    /// Flow size in bytes.
    pub bytes: u64,
}

/// Generate the north-south flow schedule for one server over `horizon`.
pub fn ns_schedule(seed: u64, src: usize, n_remote: usize, horizon: SimTime) -> Vec<NsFlow> {
    let mut rng = DetRng::new(seed ^ 0x4E53).for_stream(src as u64);
    let mut out = Vec::new();
    let mut at = SimTime::ZERO + NS_INTERVAL;
    while at < horizon {
        let u = rng.gen_f64();
        let mut acc = 0.0;
        let mut bytes = 0u64;
        for &(p, lo, hi) in NS_SIZE_MIX {
            acc += p;
            if u < acc {
                let x = lo.ln() + rng.gen_f64() * (hi.ln() - lo.ln());
                bytes = x.exp() as u64;
                break;
            }
        }
        if bytes == 0 {
            bytes = NS_SIZE_MIX.last().unwrap().2 as u64;
        }
        out.push(NsFlow {
            at,
            remote: rng.gen_range(n_remote as u64) as usize,
            bytes,
        });
        at += NS_INTERVAL;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_fires_every_millisecond() {
        let s = ns_schedule(1, 0, 4, SimTime::from_millis(100));
        assert_eq!(s.len(), 99);
        for w in s.windows(2) {
            assert_eq!(w[1].at - w[0].at, NS_INTERVAL);
        }
    }

    #[test]
    fn sizes_are_web_like() {
        let s = ns_schedule(2, 3, 4, SimTime::from_secs(10));
        let small = s.iter().filter(|f| f.bytes < 10_000).count() as f64 / s.len() as f64;
        assert!((0.45..0.75).contains(&small), "small fraction {small}");
        for f in &s {
            assert!((500..=2_000_000).contains(&f.bytes));
        }
    }

    #[test]
    fn remotes_are_spread() {
        let s = ns_schedule(3, 0, 4, SimTime::from_secs(2));
        let mut counts = [0u32; 4];
        for f in &s {
            counts[f.remote] += 1;
        }
        for c in counts {
            assert!(c > 300, "remote starved: {counts:?}");
        }
    }

    #[test]
    fn per_server_schedules_differ() {
        let a = ns_schedule(1, 0, 4, SimTime::from_millis(10));
        let b = ns_schedule(1, 1, 4, SimTime::from_millis(10));
        assert!(a
            .iter()
            .zip(&b)
            .any(|(x, y)| x.bytes != y.bytes || x.remote != y.remote));
    }
}
