//! End-host model: NIC, CPU cost model, and the vSwitch datapath.
//!
//! Presto lives in the "soft edge" — the hypervisor vSwitch plus the
//! kernel's receive-offload layer (§2.1). This crate models that edge:
//!
//! * [`nic`] — TSO segmentation on transmit (the NIC replicates the
//!   vSwitch-written shadow MAC and flowcell ID onto every derived MTU
//!   packet, §3.1) and interrupt coalescing on receive,
//! * [`cpu`] — a calibrated cost model (per-packet driver work, per-segment
//!   stack traversal, per-byte copies) that reproduces the paper's
//!   computational findings: with small segments flooding the stack, the
//!   receiver becomes CPU-bound near ~5 Gbps (§2.2, §5),
//! * [`vswitch`] — the transmit datapath: every skb handed down by TCP
//!   passes an [`EdgePolicy`] that stamps a destination (shadow) MAC and a
//!   flowcell ID before TSO,
//! * [`offload`] — the [`ReceiveOffload`] trait implemented by both GRO
//!   engines in `presto-gro`, and the [`Segment`] type they push up.

pub mod cpu;
pub mod nic;
pub mod offload;
pub mod vswitch;

pub use cpu::{CpuCosts, CpuModel};
pub use nic::{make_ack, tso_split, tso_split_into, RxAction, RxRing, TxSegment, TSO_MAX_BYTES};
pub use offload::{OffloadError, ReceiveOffload, Segment};
pub use vswitch::{DirectPolicy, EdgePolicy, LabelTable, PathSignal, PathTag, VSwitch};
