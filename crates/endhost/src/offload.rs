//! The receive-offload interface.
//!
//! The NIC driver hands batches of raw packets to a receive-offload engine
//! (GRO in Linux); the engine merges them into [`Segment`]s and decides
//! when to push each segment up the networking stack. Both the stock Linux
//! algorithm and Presto's modified algorithm (in the `presto-gro` crate)
//! implement [`ReceiveOffload`], so the composed host can swap them freely
//! — exactly the comparison of Fig 5.

use std::fmt;

use presto_netsim::{FlowKey, Packet};
use presto_simcore::SimTime;
use presto_telemetry::{FlushReason, SharedSink};

/// Why a packet could not enter the receive-offload engine.
///
/// GRO only merges TCP data packets; anything else that reaches the
/// receive path — a stray ACK delivered after its flow's state was torn
/// down, a probe, a controller frame — must be skipped, not crash the
/// host. Engines surface that decision through this error instead of
/// panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadError {
    /// The packet is not a TCP data packet (ACK, probe, …) and carries
    /// no byte-stream payload to merge.
    NotData,
}

impl fmt::Display for OffloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadError::NotData => write!(f, "receive offload only handles data packets"),
        }
    }
}

impl std::error::Error for OffloadError {}

/// A run of merged packets pushed up the stack as one unit (an `sk_buff`
/// after GRO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Flow the bytes belong to.
    pub flow: FlowKey,
    /// First byte-stream offset covered.
    pub seq: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Number of raw MTU packets merged into this segment — the unit of
    /// the paper's "small segment flooding" CPU accounting.
    pub packets: u32,
    /// Flowcell ID of the packets (segments never span flowcells).
    pub flowcell: u64,
    /// Whether any merged packet was a TCP retransmission.
    pub retx: bool,
    /// ECN congestion-experienced: the OR of the merged packets' CE bits.
    /// GRO must not launder congestion signals — if any member packet was
    /// marked, the whole merged segment (and its ACK's ECE) is.
    pub ce: bool,
}

impl Segment {
    /// One byte past the last byte covered.
    pub fn end_seq(&self) -> u64 {
        self.seq + self.len as u64
    }

    /// Build the initial segment for a single raw data packet, or report
    /// why the packet cannot seed a segment. This is the checked entry
    /// point engines use to skip stray non-data packets.
    pub fn try_from_packet(pkt: &Packet) -> Result<Segment, OffloadError> {
        match pkt.kind {
            presto_netsim::PacketKind::Data { seq, len, retx } => Ok(Segment {
                flow: pkt.flow,
                seq,
                len,
                packets: 1,
                flowcell: pkt.flowcell,
                retx,
                ce: pkt.ce,
            }),
            _ => Err(OffloadError::NotData),
        }
    }

    /// Build the initial segment for a single raw data packet.
    ///
    /// # Panics
    /// Panics if the packet is not a data packet — call only after an
    /// `is_data` check, or use [`Segment::try_from_packet`].
    pub fn from_packet(pkt: &Packet) -> Segment {
        match Segment::try_from_packet(pkt) {
            Ok(seg) => seg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Try to append `pkt` to the tail of this segment: same flow, same
    /// flowcell, and exactly contiguous sequence. Returns true on merge.
    pub fn try_merge_tail(&mut self, pkt: &Packet) -> bool {
        if let presto_netsim::PacketKind::Data { seq, len, retx } = pkt.kind {
            if pkt.flow == self.flow && pkt.flowcell == self.flowcell && seq == self.end_seq() {
                self.len += len;
                self.packets += 1;
                self.retx |= retx;
                self.ce |= pkt.ce;
                return true;
            }
        }
        false
    }
}

/// A receive-offload engine (GRO).
///
/// Call sequence per interrupt/poll event, mirroring the Linux receive
/// chain described in §2.2 of the paper:
///
/// 1. [`ReceiveOffload::on_packet`] once per raw packet in the batch;
/// 2. [`ReceiveOffload::flush`] at the end of the batch — the engine
///    returns the segments it decides to push up the stack, in the order
///    they must be delivered to TCP;
/// 3. between polls, the host arms a timer for
///    [`ReceiveOffload::next_deadline`] and calls
///    [`ReceiveOffload::flush_expired`] when it fires (only Presto's GRO
///    holds segments across polls, so the stock engine returns no
///    deadlines).
pub trait ReceiveOffload {
    /// Account one raw packet from the NIC into the engine's merge state.
    /// Engines must skip (not panic on) stray non-data packets — see
    /// [`OffloadError`].
    fn on_packet(&mut self, now: SimTime, pkt: &Packet);

    /// End-of-poll flush: segments to push up, in delivery order.
    fn flush(&mut self, now: SimTime) -> Vec<Segment>;

    /// Buffer-reusing variant of [`ReceiveOffload::flush`]: append the
    /// flushed segments to `out` instead of allocating. Engines override
    /// this to make the poll path allocation-free; the default delegates.
    fn flush_into(&mut self, now: SimTime, out: &mut Vec<Segment>) {
        out.extend(self.flush(now));
    }

    /// Earliest pending hold timeout, if the engine is holding segments.
    fn next_deadline(&self) -> Option<SimTime>;

    /// Fire expired hold timeouts; returns segments released by them.
    fn flush_expired(&mut self, now: SimTime) -> Vec<Segment>;

    /// Buffer-reusing variant of [`ReceiveOffload::flush_expired`].
    fn flush_expired_into(&mut self, now: SimTime, out: &mut Vec<Segment>) {
        out.extend(self.flush_expired(now));
    }

    /// `(reorders masked, hold timeouts fired)` — nonzero only for engines
    /// that hold segments (Presto's GRO).
    fn reorder_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Segments pushed per flush cause, indexed by
    /// [`FlushReason::index`]. Engines that attribute their pushes
    /// override this; the default reports nothing.
    fn flush_reason_counts(&self) -> [u64; FlushReason::COUNT] {
        [0; FlushReason::COUNT]
    }

    /// Install a trace sink for `GroHold`/`GroFlush` events, tagging them
    /// with the receiving `host` index. Engines without event support
    /// ignore the call.
    fn set_telemetry(&mut self, host: u32, sink: SharedSink) {
        let _ = (host, sink);
    }

    /// Number of merges that folded a CE-marked packet into an existing
    /// segment — how often this engine coalesced (and thus amplified the
    /// reach of) a congestion signal. Engines that merge override this.
    fn ce_merge_count(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_netsim::{HostId, Mac, PacketKind};

    fn pkt(seq: u64, len: u32, flowcell: u64) -> Packet {
        Packet {
            flow: FlowKey::new(HostId(0), HostId(1), 1, 2),
            src_host: HostId(0),
            dst_host: HostId(1),
            dst_mac: Mac::host(HostId(1)),
            flowcell,
            ce: false,
            kind: PacketKind::Data {
                seq,
                len,
                retx: false,
            },
        }
    }

    #[test]
    fn from_packet_copies_fields() {
        let s = Segment::from_packet(&pkt(1000, 1460, 3));
        assert_eq!(s.seq, 1000);
        assert_eq!(s.len, 1460);
        assert_eq!(s.end_seq(), 2460);
        assert_eq!(s.packets, 1);
        assert_eq!(s.flowcell, 3);
        assert!(!s.retx);
    }

    #[test]
    fn try_from_packet_rejects_acks() {
        let mut p = pkt(0, 0, 0);
        p.kind = PacketKind::Ack { ack: 0, sack_hi: 0 };
        assert_eq!(Segment::try_from_packet(&p), Err(OffloadError::NotData));
        assert_eq!(
            OffloadError::NotData.to_string(),
            "receive offload only handles data packets"
        );
    }

    #[test]
    #[should_panic(expected = "data packets")]
    fn from_packet_panics_on_acks() {
        let mut p = pkt(0, 0, 0);
        p.kind = PacketKind::Ack { ack: 0, sack_hi: 0 };
        let _ = Segment::from_packet(&p);
    }

    #[test]
    fn merge_contiguous_same_flowcell() {
        let mut s = Segment::from_packet(&pkt(0, 1460, 0));
        assert!(s.try_merge_tail(&pkt(1460, 1460, 0)));
        assert_eq!(s.len, 2920);
        assert_eq!(s.packets, 2);
    }

    #[test]
    fn merge_rejects_gap() {
        let mut s = Segment::from_packet(&pkt(0, 1460, 0));
        assert!(!s.try_merge_tail(&pkt(2920, 1460, 0)));
        assert_eq!(s.packets, 1);
    }

    #[test]
    fn merge_rejects_flowcell_change() {
        // Packets of a new flowcell never merge into the old segment even
        // when contiguous — flowcell boundaries are path boundaries.
        let mut s = Segment::from_packet(&pkt(0, 1460, 0));
        assert!(!s.try_merge_tail(&pkt(1460, 1460, 1)));
    }

    #[test]
    fn merge_rejects_other_flow() {
        let mut s = Segment::from_packet(&pkt(0, 1460, 0));
        let mut other = pkt(1460, 1460, 0);
        other.flow = FlowKey::new(HostId(5), HostId(1), 1, 2);
        assert!(!s.try_merge_tail(&other));
    }

    #[test]
    fn merge_propagates_retx_flag() {
        let mut s = Segment::from_packet(&pkt(0, 1460, 0));
        let mut r = pkt(1460, 1460, 0);
        r.kind = PacketKind::Data {
            seq: 1460,
            len: 1460,
            retx: true,
        };
        assert!(s.try_merge_tail(&r));
        assert!(s.retx);
    }

    #[test]
    fn merge_ors_ce_mark() {
        // CE from the seed packet sticks …
        let mut marked = pkt(0, 1460, 0);
        marked.ce = true;
        let mut s = Segment::from_packet(&marked);
        assert!(s.ce);
        assert!(s.try_merge_tail(&pkt(1460, 1460, 0)));
        assert!(s.ce, "unmarked tail must not clear CE");

        // … and CE from a merged tail sets it.
        let mut s = Segment::from_packet(&pkt(0, 1460, 0));
        assert!(!s.ce);
        let mut m = pkt(1460, 1460, 0);
        m.ce = true;
        assert!(s.try_merge_tail(&m));
        assert!(s.ce, "marked tail must set CE on the merged segment");
    }
}
