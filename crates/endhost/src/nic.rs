//! NIC model: TSO on transmit, interrupt coalescing on receive.
//!
//! **Transmit.** TCP hands the stack segments of up to 64 KB (the TSO
//! limit). After the vSwitch stamps a destination MAC and flowcell ID on
//! the skb, the NIC splits it into MTU-sized packets, *replicating the
//! header fields onto every derived packet* — the property Presto's
//! Algorithm 1 depends on (§3.1).
//!
//! **Receive.** The NIC coalesces interrupts: arriving packets accumulate
//! in a ring, and the driver polls a batch either after a short coalescing
//! delay or when the batch threshold is reached (§2.2's description of the
//! Linux receive chain). Each poll drives one GRO merge/flush cycle.

use presto_netsim::{FlowKey, Packet, PacketKind, MSS};
use presto_simcore::SimDuration;

use crate::vswitch::PathTag;

/// Maximum TSO segment: 64 KB, the flowcell granularity of the paper.
pub const TSO_MAX_BYTES: u32 = 64 * 1024;

/// An skb handed to the NIC for transmission (post-vSwitch).
#[derive(Debug, Clone, Copy)]
pub struct TxSegment {
    /// Flow of the payload.
    pub flow: FlowKey,
    /// First byte-stream offset.
    pub seq: u64,
    /// Payload length (≤ [`TSO_MAX_BYTES`]).
    pub len: u32,
    /// True when retransmitted.
    pub retx: bool,
    /// Path tag written by the vSwitch.
    pub tag: PathTag,
}

/// Split an skb into MTU packets, replicating the path tag onto each —
/// the NIC's TSO engine. Appends into `out`, so the hot path can reuse a
/// pooled buffer instead of allocating per segment.
pub fn tso_split_into(seg: TxSegment, out: &mut Vec<Packet>) {
    assert!(
        seg.len > 0 && seg.len <= TSO_MAX_BYTES,
        "bad TSO segment len {}",
        seg.len
    );
    out.reserve((seg.len as usize).div_ceil(MSS as usize));
    let mut off = 0u32;
    while off < seg.len {
        let chunk = (seg.len - off).min(MSS);
        out.push(Packet {
            flow: seg.flow,
            src_host: seg.flow.src,
            dst_host: seg.flow.dst,
            dst_mac: seg.tag.dst_mac,
            flowcell: seg.tag.flowcell,
            ce: false,
            kind: PacketKind::Data {
                seq: seg.seq + off as u64,
                len: chunk,
                retx: seg.retx,
            },
        });
        off += chunk;
    }
}

/// Allocating convenience wrapper over [`tso_split_into`].
pub fn tso_split(seg: TxSegment) -> Vec<Packet> {
    let mut out = Vec::with_capacity((seg.len as usize).div_ceil(MSS as usize));
    tso_split_into(seg, &mut out);
    out
}

/// Build a pure ACK packet carrying the reverse-path tag. `ece` is the
/// ECN-Echo: true when the segment being acknowledged arrived CE-marked,
/// carried back to the sender on the ACK's `ce` bit (switches never mark
/// ACKs, so the bit is free on the reverse path).
pub fn make_ack(flow: FlowKey, ack: u64, sack_hi: u64, tag: PathTag, ece: bool) -> Packet {
    Packet {
        flow,
        src_host: flow.src,
        dst_host: flow.dst,
        dst_mac: tag.dst_mac,
        flowcell: tag.flowcell,
        ce: ece,
        kind: PacketKind::Ack { ack, sack_hi },
    }
}

/// Receive-side ring with interrupt coalescing.
///
/// Arrival side: [`RxRing::push`] stores the packet and reports whether a
/// poll must be scheduled (first packet of an idle ring) or fired
/// immediately (batch threshold reached). Poll side: [`RxRing::drain`]
/// hands the accumulated batch to the driver.
#[derive(Debug)]
pub struct RxRing {
    buf: Vec<Packet>,
    /// A poll event is outstanding.
    poll_pending: bool,
    /// Coalescing delay from first packet to poll.
    pub coalesce_delay: SimDuration,
    /// Poll immediately once this many packets accumulate.
    pub batch_limit: usize,
    /// Ring capacity; arrivals beyond it are dropped (receiver livelock).
    pub capacity: usize,
    /// Packets dropped due to ring overflow.
    pub overflow_drops: u64,
}

/// What the arrival path should do after [`RxRing::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxAction {
    /// Nothing: a poll is already scheduled.
    None,
    /// Schedule a poll after the coalescing delay.
    SchedulePoll(SimDuration),
    /// Batch threshold hit: poll right away.
    PollNow,
    /// Ring full: packet dropped.
    Dropped,
}

impl RxRing {
    /// A ring with typical 10 GbE driver parameters: ~20 µs coalescing,
    /// 64-packet NAPI batches, 4096-descriptor ring.
    pub fn new() -> Self {
        RxRing {
            buf: Vec::new(),
            poll_pending: false,
            coalesce_delay: SimDuration::from_micros(20),
            batch_limit: 64,
            capacity: 4096,
            overflow_drops: 0,
        }
    }

    /// Accept an arriving packet.
    pub fn push(&mut self, pkt: Packet) -> RxAction {
        if self.buf.len() >= self.capacity {
            self.overflow_drops += 1;
            return RxAction::Dropped;
        }
        self.buf.push(pkt);
        if self.buf.len() >= self.batch_limit && self.poll_pending {
            // Threshold reached before the coalescing timer: poll now. The
            // pending timer will find an empty ring and do nothing.
            return RxAction::PollNow;
        }
        if !self.poll_pending {
            self.poll_pending = true;
            return RxAction::SchedulePoll(self.coalesce_delay);
        }
        RxAction::None
    }

    /// Drain the accumulated batch for one poll event.
    pub fn drain(&mut self) -> Vec<Packet> {
        self.poll_pending = false;
        std::mem::take(&mut self.buf)
    }

    /// Drain the batch into `out` by buffer swap: `out` receives the
    /// accumulated packets and the ring keeps `out`'s (cleared) allocation
    /// for the next interrupt — no allocation on either side once warm.
    pub fn drain_into(&mut self, out: &mut Vec<Packet>) {
        self.poll_pending = false;
        out.clear();
        std::mem::swap(&mut self.buf, out);
    }

    /// Packets currently waiting.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

impl Default for RxRing {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_netsim::{HostId, Mac};

    fn tag() -> PathTag {
        PathTag {
            dst_mac: Mac::shadow(HostId(1), 2),
            flowcell: 7,
        }
    }

    fn seg(len: u32) -> TxSegment {
        TxSegment {
            flow: FlowKey::new(HostId(0), HostId(1), 5, 6),
            seq: 1000,
            len,
            retx: false,
            tag: tag(),
        }
    }

    #[test]
    fn tso_splits_64kb_into_mss_packets() {
        let pkts = tso_split(seg(TSO_MAX_BYTES));
        // ceil(65536 / 1460) = 45 packets.
        assert_eq!(pkts.len(), 45);
        let total: u32 = pkts.iter().map(|p| p.payload_bytes()).sum();
        assert_eq!(total, TSO_MAX_BYTES);
        // All but the last are full MSS.
        for p in &pkts[..44] {
            assert_eq!(p.payload_bytes(), MSS);
        }
    }

    #[test]
    fn tso_replicates_tag_to_all_packets() {
        // The paper: "the TSO algorithm in the NIC replicates these values
        // to all derived MTU-sized packets."
        let pkts = tso_split(seg(10_000));
        for p in &pkts {
            assert_eq!(p.dst_mac, tag().dst_mac);
            assert_eq!(p.flowcell, 7);
        }
    }

    #[test]
    fn tso_sequences_are_contiguous() {
        let pkts = tso_split(seg(5000));
        let mut expect = 1000u64;
        for p in &pkts {
            match p.kind {
                PacketKind::Data { seq, len, .. } => {
                    assert_eq!(seq, expect);
                    expect += len as u64;
                }
                _ => unreachable!(),
            }
        }
        assert_eq!(expect, 6000);
    }

    #[test]
    fn tso_small_segment_is_one_packet() {
        let pkts = tso_split(seg(300));
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload_bytes(), 300);
    }

    #[test]
    #[should_panic(expected = "bad TSO segment")]
    fn tso_rejects_oversize() {
        let _ = tso_split(seg(TSO_MAX_BYTES + 1));
    }

    fn data_pkt() -> Packet {
        Packet {
            flow: FlowKey::new(HostId(0), HostId(1), 5, 6),
            src_host: HostId(0),
            dst_host: HostId(1),
            dst_mac: Mac::host(HostId(1)),
            flowcell: 0,
            ce: false,
            kind: PacketKind::Data {
                seq: 0,
                len: 1460,
                retx: false,
            },
        }
    }

    #[test]
    fn first_packet_schedules_poll() {
        let mut r = RxRing::new();
        assert_eq!(
            r.push(data_pkt()),
            RxAction::SchedulePoll(SimDuration::from_micros(20))
        );
        assert_eq!(r.push(data_pkt()), RxAction::None);
        assert_eq!(r.pending(), 2);
    }

    #[test]
    fn batch_limit_forces_immediate_poll() {
        let mut r = RxRing::new();
        r.batch_limit = 4;
        assert!(matches!(r.push(data_pkt()), RxAction::SchedulePoll(_)));
        assert_eq!(r.push(data_pkt()), RxAction::None);
        assert_eq!(r.push(data_pkt()), RxAction::None);
        assert_eq!(r.push(data_pkt()), RxAction::PollNow);
    }

    #[test]
    fn drain_resets_for_next_interrupt() {
        let mut r = RxRing::new();
        r.push(data_pkt());
        r.push(data_pkt());
        let batch = r.drain();
        assert_eq!(batch.len(), 2);
        assert_eq!(r.pending(), 0);
        // Next packet re-arms the poll.
        assert!(matches!(r.push(data_pkt()), RxAction::SchedulePoll(_)));
    }

    #[test]
    fn overflow_drops_when_full() {
        let mut r = RxRing::new();
        r.capacity = 2;
        r.push(data_pkt());
        r.push(data_pkt());
        assert_eq!(r.push(data_pkt()), RxAction::Dropped);
        assert_eq!(r.overflow_drops, 1);
    }

    #[test]
    fn make_ack_carries_tag() {
        let f = FlowKey::new(HostId(1), HostId(0), 6, 5);
        let a = make_ack(f, 5000, 8000, tag(), false);
        assert_eq!(a.dst_mac, tag().dst_mac);
        assert!(matches!(
            a.kind,
            PacketKind::Ack {
                ack: 5000,
                sack_hi: 8000
            }
        ));
        assert_eq!(a.src_host, HostId(1));
        assert_eq!(a.dst_host, HostId(0));
        assert!(!a.ce);
    }

    #[test]
    fn make_ack_carries_ece_on_ce_bit() {
        let f = FlowKey::new(HostId(1), HostId(0), 6, 5);
        assert!(make_ack(f, 1460, 1460, tag(), true).ce);
    }

    #[test]
    fn tso_packets_start_unmarked() {
        // CE is a fabric signal: freshly segmented sender packets never
        // carry it.
        assert!(tso_split(seg(10_000)).iter().all(|p| !p.ce));
    }
}
