//! The transmit-side vSwitch datapath.
//!
//! Every skb TCP hands down traverses the vSwitch before reaching the NIC
//! (§3.1). The vSwitch consults an [`EdgePolicy`] — Presto's flowcell
//! scheduler, or one of the baselines in `presto-lb` — which returns the
//! destination MAC to write (a shadow MAC selecting a spanning tree, or
//! the real host MAC) and the flowcell ID to stamp. The datapath also
//! keeps the per-flow byte counters Algorithm 1 relies on (those live
//! inside the policies, which are per-flow stateful) and per-host transmit
//! statistics.

use std::collections::HashMap;

use presto_netsim::{FlowKey, HostId, Mac};
use presto_probe::{HostLoad, PoolStats, ProbeParams};
use presto_simcore::{SimDuration, SimTime};

/// The path-selection decision for one skb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathTag {
    /// Destination MAC to write into the skb (replicated by TSO).
    pub dst_mac: Mac,
    /// Flowcell ID to stamp (replicated by TSO).
    pub flowcell: u64,
}

/// A per-path congestion observation delivered to feedback-driven policies.
///
/// One signal per spanning tree reachable from the host's leaf, sampled on
/// the fault-notify plumbing's cadence (see [`EdgePolicy::feedback_interval`]).
/// The signal is derived from the first-hop uplink the tree rides, which is
/// the only queue the edge can observe without in-network support — the
/// same restriction CAFT and Prequal-style schemes operate under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSignal {
    /// Spanning-tree id the signal describes (matches `Mac::tree()`).
    pub tree: u32,
    /// Bytes queued on the tree's first-hop uplink at sample time.
    pub queue_bytes: u64,
    /// Fraction of the uplink's nominal rate currently available
    /// (1.0 = healthy, 0.0 = down), from the fault subsystem.
    pub rate_fraction: f64,
}

/// Shared per-destination label store for label-driven policies.
///
/// Every scheme that follows the controller's disseminated label sets
/// (ECMP, flowlet, per-packet, and the new arena schemes) needs the same
/// three operations: replace the set for a destination, look it up, and
/// report it back for tests. This helper hoists that boilerplate so a
/// policy holds a `LabelTable` instead of re-implementing the map.
#[derive(Debug, Default, Clone)]
pub struct LabelTable {
    labels: HashMap<HostId, Vec<Mac>>,
}

impl LabelTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the label sequence toward `dst`. Label sets are never empty:
    /// the controller always disseminates at least one path.
    pub fn set(&mut self, dst: HostId, labels: Vec<Mac>) {
        assert!(
            !labels.is_empty(),
            "label set for {dst:?} must be non-empty"
        );
        self.labels.insert(dst, labels);
    }

    /// The label sequence toward `dst`, if the controller installed one.
    pub fn get(&self, dst: HostId) -> Option<&[Mac]> {
        self.labels.get(&dst).map(Vec::as_slice)
    }

    /// The label sequence toward `dst` in schedule order, or empty.
    pub fn current(&self, dst: HostId) -> Vec<Mac> {
        self.labels.get(&dst).cloned().unwrap_or_default()
    }
}

/// An edge load-balancing policy: maps each outgoing skb to a path tag.
///
/// Implementations: Presto's Algorithm 1 (`presto_core::FlowcellScheduler`),
/// per-flow ECMP, flowlet switching and per-packet spraying (`presto-lb`),
/// and the pass-through [`DirectPolicy`].
pub trait EdgePolicy {
    /// Decide the tag for an skb of `len` bytes on `flow`.
    ///
    /// Retransmitted TCP packets run through this code again, exactly as
    /// the paper notes for Algorithm 1, so `retx` is visible to policies
    /// but must not short-circuit the accounting.
    fn assign(&mut self, now: SimTime, flow: FlowKey, len: u32, retx: bool) -> PathTag;

    /// Install (or replace) the label sequence toward `dst` — how the
    /// controller disseminates path sets and weighted schedules to the
    /// edge (§3.1). Policies that ignore labels (e.g. [`DirectPolicy`])
    /// keep the default no-op.
    fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        let _ = (dst, labels);
    }

    /// The label sequence currently installed toward `dst`, in schedule
    /// order — lets tests and fault-recovery checks observe what the
    /// controller last disseminated. Label-less policies report none.
    fn current_labels(&self, dst: HostId) -> Vec<Mac> {
        let _ = dst;
        Vec::new()
    }

    /// Completed flowlet sizes, for policies that track them (Fig 1's
    /// analysis); everyone else reports none.
    fn flowlet_sizes(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Number of flowcells this policy has created (Algorithm 1 policies).
    fn flowcells_created(&self) -> u64 {
        0
    }

    /// Flowcells assigned per spanning-tree path, indexed by the label's
    /// tree id — the telemetry spray histogram. Policies that don't spray
    /// report nothing.
    fn path_spray_counts(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Lifecycle hook: the controller finished (re)installing labels on
    /// this policy — e.g. after a fault reweight or recovery. Policies
    /// with per-path state keyed by schedule position (congestion EWMAs,
    /// round-robin cursors) use this to resynchronize; everyone else
    /// keeps the no-op.
    fn labels_updated(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Advisory flow-size hint from the application layer: `bytes` is the
    /// flow's total intended size when known (`None` for open-ended
    /// streams). Size-aware schemes (DiffFlow) use it to classify
    /// elephants before the byte counters catch up; everyone else keeps
    /// the no-op.
    fn flow_hint(&mut self, flow: FlowKey, bytes: Option<u64>) {
        let _ = (flow, bytes);
    }

    /// Periodic per-path congestion/fault feedback (one [`PathSignal`]
    /// per tree), delivered on the cadence requested by
    /// [`feedback_interval`](EdgePolicy::feedback_interval). Reuses the
    /// fault-notify plumbing; congestion-aware schemes (CAFT) fold these
    /// into path weights.
    fn path_feedback(&mut self, now: SimTime, signals: &[PathSignal]) {
        let _ = (now, signals);
    }

    /// How often this policy wants [`path_feedback`](EdgePolicy::path_feedback)
    /// sampled, or `None` to opt out (the default). When every policy in a
    /// simulation opts out, no feedback events are scheduled at all, so
    /// feedback-free schemes keep byte-identical event streams.
    fn feedback_interval(&self) -> Option<SimDuration> {
        None
    }

    /// Receiver-load probing opt-in: the probe cadence, pool capacity and
    /// staleness bound this policy wants, or `None` (the default). Like
    /// [`feedback_interval`](EdgePolicy::feedback_interval), opting out
    /// means no probe event is ever scheduled, so load-oblivious schemes
    /// keep byte-identical event streams and digests.
    fn probe_params(&self) -> Option<ProbeParams> {
        None
    }

    /// A probe round completed: one [`HostLoad`] per destination probed
    /// this round, delivered out-of-band (probes ride the control plane,
    /// like fault notifications — they never occupy data queues).
    /// Load-aware policies fold these into their probe pool; everyone
    /// else keeps the no-op.
    fn probe_feedback(&mut self, now: SimTime, loads: &[HostLoad]) {
        let _ = (now, loads);
    }

    /// Replica selection for partition-aggregate requests: pick `k`
    /// responders from `candidates` (the aggregator's eligible worker
    /// set, in canonical order). Returning `None` (the default) keeps the
    /// static choice — the first `k` candidates — so load-oblivious
    /// schemes see exactly the sender set they always did.
    fn select_replicas(
        &mut self,
        now: SimTime,
        candidates: &[HostId],
        k: usize,
    ) -> Option<Vec<HostId>> {
        let _ = (now, candidates, k);
        None
    }

    /// Cumulative probe-pool occupancy counters, for the run report's
    /// probe figure. Policies without a pool report `None`.
    fn probe_pool_stats(&self) -> Option<PoolStats> {
        None
    }
}

/// Pass-through policy: real destination MAC, flowcell 0. Used for the
/// single-switch "Optimal" baseline where there is nothing to balance.
#[derive(Debug, Default, Clone)]
pub struct DirectPolicy;

impl EdgePolicy for DirectPolicy {
    fn assign(&mut self, _now: SimTime, flow: FlowKey, _len: u32, _retx: bool) -> PathTag {
        PathTag {
            dst_mac: Mac::host(flow.dst),
            flowcell: 0,
        }
    }
}

/// Per-host transmit datapath: policy + counters.
pub struct VSwitch {
    /// The host this vSwitch runs on.
    pub host: HostId,
    policy: Box<dyn EdgePolicy>,
    /// Skbs processed.
    pub tx_segments: u64,
    /// Payload bytes processed.
    pub tx_bytes: u64,
}

impl VSwitch {
    /// A vSwitch for `host` running `policy`.
    pub fn new(host: HostId, policy: Box<dyn EdgePolicy>) -> Self {
        VSwitch {
            host,
            policy,
            tx_segments: 0,
            tx_bytes: 0,
        }
    }

    /// Run the datapath on one outgoing skb, returning its path tag.
    pub fn process(&mut self, now: SimTime, flow: FlowKey, len: u32, retx: bool) -> PathTag {
        self.tx_segments += 1;
        self.tx_bytes += len as u64;
        self.policy.assign(now, flow, len, retx)
    }

    /// Swap the policy (the controller does this when weights change at
    /// scheme boundaries; Presto's own weight updates go through the
    /// policy's interior state instead).
    pub fn set_policy(&mut self, policy: Box<dyn EdgePolicy>) {
        self.policy = policy;
    }

    /// Borrow the policy for inspection/mutation by the controller.
    pub fn policy_mut(&mut self) -> &mut dyn EdgePolicy {
        self.policy.as_mut()
    }

    /// Borrow the policy for read-only instrumentation.
    pub fn policy(&self) -> &dyn EdgePolicy {
        self.policy.as_ref()
    }
}

impl std::fmt::Debug for VSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VSwitch")
            .field("host", &self.host)
            .field("tx_segments", &self.tx_segments)
            .field("tx_bytes", &self.tx_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowKey {
        FlowKey::new(HostId(3), HostId(7), 10, 20)
    }

    #[test]
    fn direct_policy_uses_real_mac() {
        let mut p = DirectPolicy;
        let tag = p.assign(SimTime::ZERO, flow(), 64 * 1024, false);
        assert_eq!(tag.dst_mac, Mac::host(HostId(7)));
        assert!(!tag.dst_mac.is_shadow());
        assert_eq!(tag.flowcell, 0);
    }

    #[test]
    fn vswitch_counts_traffic() {
        let mut v = VSwitch::new(HostId(3), Box::new(DirectPolicy));
        v.process(SimTime::ZERO, flow(), 1000, false);
        v.process(SimTime::ZERO, flow(), 2000, true);
        assert_eq!(v.tx_segments, 2);
        assert_eq!(v.tx_bytes, 3000);
    }

    /// A policy that alternates between two labels — verifies the trait
    /// object plumbing end to end.
    struct Alternating {
        count: u64,
    }

    impl EdgePolicy for Alternating {
        fn assign(&mut self, _now: SimTime, flow: FlowKey, _len: u32, _retx: bool) -> PathTag {
            self.count += 1;
            PathTag {
                dst_mac: Mac::shadow(flow.dst, (self.count % 2) as u32),
                flowcell: self.count,
            }
        }
    }

    #[test]
    fn custom_policy_drives_tags() {
        let mut v = VSwitch::new(HostId(0), Box::new(Alternating { count: 0 }));
        let a = v.process(SimTime::ZERO, flow(), 100, false);
        let b = v.process(SimTime::ZERO, flow(), 100, false);
        assert_ne!(a.dst_mac, b.dst_mac);
        assert_eq!(a.flowcell + 1, b.flowcell);
        assert!(a.dst_mac.is_shadow());
    }

    #[test]
    fn set_policy_replaces_behaviour() {
        let mut v = VSwitch::new(HostId(0), Box::new(Alternating { count: 0 }));
        assert!(v
            .process(SimTime::ZERO, flow(), 1, false)
            .dst_mac
            .is_shadow());
        v.set_policy(Box::new(DirectPolicy));
        assert!(!v
            .process(SimTime::ZERO, flow(), 1, false)
            .dst_mac
            .is_shadow());
    }
}
