//! Receiver CPU cost model.
//!
//! The paper's central computational observation (§2.2): receive-side cost
//! is dominated by *per-segment* work — buffer management and stack
//! traversal — not per-byte copies. GRO exists to amortize that cost over
//! 64 KB merges; reordering defeats GRO and floods the stack with
//! MTU-sized segments, saturating a core near 5 Gbps ("small segment
//! flooding").
//!
//! [`CpuModel`] charges three calibrated costs per pushed-up segment:
//!
//! * `per_packet` for every raw packet merged into it (driver + GRO merge),
//! * `per_segment` for the push up the stack (the dominant term),
//! * `per_byte` for copies/checksums.
//!
//! With the defaults below, a receiver processing 64 KB segments at
//! 9.3 Gbps sits near 55% utilization while MTU-sized segments saturate
//! the core at ≈4.9 Gbps — matching the shape of the paper's §5 numbers
//! (9.3 Gbps @ 69% for Presto GRO vs 4.6 Gbps @ 86% for reordered stock
//! GRO). The receiver is modeled as one core, as in the paper's
//! single-queue experiments.

use presto_simcore::{SimDuration, SimTime};

use crate::offload::Segment;

/// Calibrated cost constants.
#[derive(Debug, Clone, Copy)]
pub struct CpuCosts {
    /// Driver + GRO merge work per raw packet.
    pub per_packet: SimDuration,
    /// Stack traversal per segment pushed up (dominant, per Menon's and
    /// the paper's analysis).
    pub per_segment: SimDuration,
    /// Copy/checksum cost per payload byte, in nanoseconds.
    pub per_byte_ns: f64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            per_packet: SimDuration::from_nanos(150),
            per_segment: SimDuration::from_nanos(1800),
            per_byte_ns: 0.3,
        }
    }
}

impl CpuCosts {
    /// Total processing cost of one pushed-up segment.
    pub fn segment_cost(&self, seg: &Segment) -> SimDuration {
        let pkt = self.per_packet.saturating_mul(seg.packets as u64);
        let bytes = SimDuration::from_nanos((seg.len as f64 * self.per_byte_ns).round() as u64);
        pkt + self.per_segment + bytes
    }

    /// Line-rate ceiling (bytes/sec) for a given steady segment size: the
    /// throughput at which this cost model pins one core at 100%.
    pub fn saturation_bytes_per_sec(&self, segment_bytes: u32, mss: u32) -> f64 {
        let per_byte = self.per_packet.as_nanos() as f64 / mss as f64
            + self.per_segment.as_nanos() as f64 / segment_bytes as f64
            + self.per_byte_ns;
        1e9 / per_byte
    }
}

/// A single receive core processing segments in FIFO order.
#[derive(Debug)]
pub struct CpuModel {
    /// The cost constants in force.
    pub costs: CpuCosts,
    /// Extra per-packet work charged by the offload engine in use —
    /// Presto's GRO pays a little more bookkeeping per packet (the paper
    /// measures +6% CPU overall at line rate, Fig 6).
    pub per_packet_extra: SimDuration,
    busy_until: SimTime,
    busy_total: SimDuration,
    segments_processed: u64,
    packets_processed: u64,
}

impl CpuModel {
    /// A fresh, idle core.
    pub fn new(costs: CpuCosts) -> Self {
        CpuModel {
            costs,
            per_packet_extra: SimDuration::ZERO,
            busy_until: SimTime::ZERO,
            busy_total: SimDuration::ZERO,
            segments_processed: 0,
            packets_processed: 0,
        }
    }

    /// Process a batch of segments arriving at `now`, appending each
    /// segment and the time its processing completes (when TCP sees it)
    /// to `out`. Buffer-reusing hot-path variant.
    pub fn process_into(
        &mut self,
        now: SimTime,
        segments: &[Segment],
        out: &mut Vec<(SimTime, Segment)>,
    ) {
        out.reserve(segments.len());
        for &seg in segments {
            let cost = self.costs.segment_cost(&seg)
                + self.per_packet_extra.saturating_mul(seg.packets as u64);
            let start = if self.busy_until > now {
                self.busy_until
            } else {
                now
            };
            let done = start + cost;
            self.busy_until = done;
            self.busy_total += cost;
            self.segments_processed += 1;
            self.packets_processed += seg.packets as u64;
            out.push((done, seg));
        }
    }

    /// Allocating convenience wrapper over [`CpuModel::process_into`].
    pub fn process(&mut self, now: SimTime, segments: Vec<Segment>) -> Vec<(SimTime, Segment)> {
        let mut out = Vec::with_capacity(segments.len());
        self.process_into(now, &segments, &mut out);
        out
    }

    /// Charge miscellaneous work (ACK processing, probe echo) without a
    /// segment attached; returns its completion time.
    pub fn charge(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let done = start + cost;
        self.busy_until = done;
        self.busy_total += cost;
        done
    }

    /// Cumulative busy time — callers snapshot this to compute utilization
    /// over windows (Fig 6 samples every 2 s).
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Instant the core goes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Current backlog relative to `now`.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Segments pushed up so far.
    pub fn segments_processed(&self) -> u64 {
        self.segments_processed
    }

    /// Raw packets accounted so far.
    pub fn packets_processed(&self) -> u64 {
        self.packets_processed
    }

    /// Mean segment size in packets — the health indicator for GRO
    /// effectiveness (≈45 when 64 KB merges survive, ≈1 under flooding).
    pub fn mean_merge_ratio(&self) -> f64 {
        if self.segments_processed == 0 {
            0.0
        } else {
            self.packets_processed as f64 / self.segments_processed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_netsim::{FlowKey, HostId};

    fn seg(len: u32, packets: u32) -> Segment {
        Segment {
            flow: FlowKey::new(HostId(0), HostId(1), 1, 2),
            seq: 0,
            len,
            packets,
            flowcell: 0,
            retx: false,
            ce: false,
        }
    }

    #[test]
    fn segment_cost_components() {
        let c = CpuCosts::default();
        let cost = c.segment_cost(&seg(1460, 1));
        // 150 + 1800 + 438 = 2388 ns.
        assert_eq!(cost.as_nanos(), 150 + 1800 + 438);
        let big = c.segment_cost(&seg(65536, 45));
        // 45*150 + 1800 + 19661 = 28211 ns.
        assert_eq!(big.as_nanos(), 45 * 150 + 1800 + 19661);
    }

    #[test]
    fn big_segments_amortize_cost() {
        let c = CpuCosts::default();
        let small_per_byte = c.segment_cost(&seg(1460, 1)).as_nanos() as f64 / 1460.0;
        let big_per_byte = c.segment_cost(&seg(65536, 45)).as_nanos() as f64 / 65536.0;
        assert!(
            small_per_byte > 3.0 * big_per_byte,
            "per-byte cost should collapse with merging: {small_per_byte} vs {big_per_byte}"
        );
    }

    #[test]
    fn saturation_matches_paper_shape() {
        let c = CpuCosts::default();
        // MTU segments: core saturates near 5 Gbps (paper: 4.6-5.7 Gbps).
        let mtu_gbps = c.saturation_bytes_per_sec(1460, 1460) * 8.0 / 1e9;
        assert!(
            (4.0..6.5).contains(&mtu_gbps),
            "MTU saturation {mtu_gbps} Gbps"
        );
        // 64 KB segments: ceiling far above 10 Gbps line rate.
        let big_gbps = c.saturation_bytes_per_sec(65536, 1460) * 8.0 / 1e9;
        assert!(big_gbps > 15.0, "64KB saturation {big_gbps} Gbps");
    }

    #[test]
    fn utilization_at_line_rate_is_moderate() {
        // 9.3 Gbps of 64 KB segments should cost ~50-70% of one core.
        let c = CpuCosts::default();
        let bytes_per_sec = 9.3e9 / 8.0;
        let segs_per_sec = bytes_per_sec / 65536.0;
        let cost = c.segment_cost(&seg(65536, 45));
        let util = segs_per_sec * cost.as_secs_f64();
        assert!((0.40..0.75).contains(&util), "utilization {util}");
    }

    #[test]
    fn fifo_processing_backs_up() {
        let mut cpu = CpuModel::new(CpuCosts::default());
        let now = SimTime::from_micros(10);
        let out = cpu.process(now, vec![seg(1460, 1), seg(1460, 1)]);
        let c = CpuCosts::default().segment_cost(&seg(1460, 1));
        assert_eq!(out[0].0, now + c);
        assert_eq!(out[1].0, now + c + c);
        assert_eq!(cpu.busy_total(), c + c);
        assert_eq!(cpu.segments_processed(), 2);
    }

    #[test]
    fn idle_gaps_do_not_accumulate_busy_time() {
        let mut cpu = CpuModel::new(CpuCosts::default());
        cpu.process(SimTime::from_micros(0), vec![seg(100, 1)]);
        // Long idle gap, then more work: busy_total counts only work.
        cpu.process(SimTime::from_millis(5), vec![seg(100, 1)]);
        let one = CpuCosts::default().segment_cost(&seg(100, 1));
        assert_eq!(cpu.busy_total(), one + one);
        assert!(cpu.backlog(SimTime::from_millis(10)) == SimDuration::ZERO);
    }

    #[test]
    fn engine_extra_charges_per_packet() {
        let mut base = CpuModel::new(CpuCosts::default());
        let mut presto = CpuModel::new(CpuCosts::default());
        presto.per_packet_extra = SimDuration::from_nanos(75);
        base.process(SimTime::ZERO, vec![seg(65536, 45)]);
        presto.process(SimTime::ZERO, vec![seg(65536, 45)]);
        let delta = presto.busy_total() - base.busy_total();
        assert_eq!(delta.as_nanos(), 45 * 75);
    }

    #[test]
    fn merge_ratio_tracks_gro_health() {
        let mut cpu = CpuModel::new(CpuCosts::default());
        cpu.process(SimTime::ZERO, vec![seg(65536, 45), seg(1460, 1)]);
        assert!((cpu.mean_merge_ratio() - 23.0).abs() < 0.01);
    }

    #[test]
    fn saturation_monotone_in_segment_size() {
        let c = CpuCosts::default();
        let small = c.saturation_bytes_per_sec(1460, 1460);
        let mid = c.saturation_bytes_per_sec(16 * 1024, 1460);
        let big = c.saturation_bytes_per_sec(64 * 1024, 1460);
        assert!(small < mid && mid < big, "{small} {mid} {big}");
    }

    #[test]
    fn backlog_reflects_pending_work() {
        let mut cpu = CpuModel::new(CpuCosts::default());
        let now = SimTime::from_micros(100);
        cpu.process(now, vec![seg(65536, 45); 10]);
        assert!(cpu.backlog(now) > SimDuration::from_micros(200));
        // After the busy period, the backlog vanishes.
        assert_eq!(cpu.backlog(cpu.busy_until()), SimDuration::ZERO);
    }

    #[test]
    fn charge_misc_work() {
        let mut cpu = CpuModel::new(CpuCosts::default());
        let done = cpu.charge(SimTime::ZERO, SimDuration::from_nanos(500));
        assert_eq!(done, SimTime::from_nanos(500));
        assert_eq!(cpu.busy_total(), SimDuration::from_nanos(500));
    }
}
