//! Presto — the paper's primary contribution.
//!
//! * [`FlowcellScheduler`] (Algorithm 1): the vSwitch edge policy that
//!   chops each flow into ≤64 KB flowcells and round-robins them over
//!   shadow-MAC labeled spanning-tree paths, with weighted sequences for
//!   asymmetry (§3.1, §3.3);
//! * [`Controller`]: the centralized controller that partitions a 2-tier
//!   Clos fabric into ν·γ disjoint spanning trees, assigns one shadow MAC
//!   per (destination vSwitch, tree), installs the L2 forwarding rules and
//!   leaf-level fast-failover groups, and recomputes weighted label
//!   sequences when links fail (§3.1, §3.3).
//!
//! The receiver half of Presto (the modified GRO) lives in `presto-gro`;
//! the two halves meet in the composed host of `presto-testbed`.

pub mod controller;
pub mod flowcell;

pub use controller::Controller;
pub use flowcell::{FlowcellScheduler, FLOWCELL_BYTES};
