//! Presto — the paper's primary contribution.
//!
//! * [`FlowcellScheduler`] (Algorithm 1): the vSwitch edge policy that
//!   chops each flow into ≤64 KB flowcells and round-robins them over
//!   shadow-MAC labeled spanning-tree paths, with weighted sequences for
//!   asymmetry (§3.1, §3.3);
//! * [`Controller`]: the centralized controller that partitions a tiered
//!   Clos fabric (2-tier or deeper) into link-disjoint spanning trees,
//!   assigns one shadow MAC per (destination vSwitch, tree), installs the
//!   L2 forwarding rules and fast-failover groups at every non-top tier,
//!   and recomputes weighted label sequences when links fail (§3.1, §3.3).
//!   On the paper's 2-tier testbed the allocation is exactly the ν·γ
//!   spine-and-link enumeration; on deeper fabrics each tree is an
//!   explicit per-leaf chain of up-hops ([`TreePath`]).
//!
//! The receiver half of Presto (the modified GRO) lives in `presto-gro`;
//! the two halves meet in the composed host of `presto-testbed`.

#![warn(missing_docs)]

pub mod controller;
pub mod flowcell;

pub use controller::{Controller, TreeHop, TreePath, WEIGHT_SCALE};
pub use flowcell::{FlowcellScheduler, FLOWCELL_BYTES};
