//! Algorithm 1: flowcell creation and round-robin path assignment.
//!
//! The sender's vSwitch keeps a per-flow byte counter. Consecutive skbs
//! share a destination shadow MAC (and flowcell ID) until adding the next
//! skb would exceed 64 KB; then the vSwitch advances to the next label in
//! the destination's sequence and increments the flowcell ID:
//!
//! ```text
//! if bytecount + len(skb) > threshold:
//!     bytecount   <- len(skb)
//!     current_mac <- (current_mac + 1) % total_macs
//!     flowcellID  <- flowcellID + 1
//! else:
//!     bytecount   <- bytecount + len(skb)
//! ```
//!
//! Weighted multipathing (§3.3) falls out of the label *sequence*: to give
//! paths weights 0.25/0.5/0.25 the controller sends the sequence
//! `p1 p2 p3 p2` and the round robin realizes the weights — WCMP pushed
//! entirely to the network edge.

use std::collections::HashMap;

use presto_endhost::{EdgePolicy, PathTag};
use presto_netsim::{FlowKey, HostId, Mac};
use presto_simcore::rng::hash_mix;
use presto_simcore::SimTime;

/// The flowcell threshold: the maximum TSO segment size (64 KB).
pub const FLOWCELL_BYTES: u64 = 64 * 1024;

#[derive(Debug, Clone)]
struct FlowState {
    bytecount: u64,
    current_mac: usize,
    flowcell: u64,
}

/// # Example
///
/// ```
/// use presto_core::FlowcellScheduler;
/// use presto_endhost::EdgePolicy;
/// use presto_netsim::{FlowKey, HostId, Mac};
/// use presto_simcore::SimTime;
///
/// let mut sched = FlowcellScheduler::new();
/// sched.set_labels(HostId(9), vec![Mac::shadow(HostId(9), 0), Mac::shadow(HostId(9), 1)]);
/// let flow = FlowKey::new(HostId(0), HostId(9), 1000, 80);
///
/// // Two full 64 KB skbs land in different flowcells on different paths.
/// let a = sched.assign(SimTime::ZERO, flow, 64 * 1024, false);
/// let b = sched.assign(SimTime::ZERO, flow, 64 * 1024, false);
/// assert_ne!(a.dst_mac, b.dst_mac);
/// assert_eq!(b.flowcell, a.flowcell + 1);
/// ```
/// Per-host Presto edge policy (one instance per sender vSwitch).
#[derive(Debug, Default)]
pub struct FlowcellScheduler {
    /// Label sequence per destination host, installed by the controller.
    /// Duplicated entries realize path weights.
    labels: HashMap<HostId, Vec<Mac>>,
    /// Per-flow Algorithm 1 state.
    flows: HashMap<FlowKey, FlowState>,
    /// Flowcell size threshold (64 KB in the paper; the ablation benches
    /// sweep it).
    pub threshold: u64,
    /// Flowcells created (instrumentation).
    pub flowcells_created: u64,
    /// Flowcells assigned per spanning-tree path, indexed by the chosen
    /// label's tree id (telemetry spray histogram).
    spray_counts: Vec<u64>,
}

impl FlowcellScheduler {
    /// A scheduler with the paper's 64 KB threshold and no labels yet.
    pub fn new() -> Self {
        FlowcellScheduler {
            labels: HashMap::new(),
            flows: HashMap::new(),
            threshold: FLOWCELL_BYTES,
            flowcells_created: 0,
            spray_counts: Vec::new(),
        }
    }

    /// Install (or replace) the label sequence toward `dst`. Existing flows
    /// keep their position modulo the new sequence length.
    pub fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        assert!(!labels.is_empty(), "label sequence must be non-empty");
        self.labels.insert(dst, labels);
    }

    /// Install a weighted sequence from `(label, weight)` pairs by
    /// duplication — weights are small integers (the paper's p1 p2 p3 p2
    /// example is `[(p1,1),(p2,2),(p3,1)]`).
    pub fn set_weighted_labels(&mut self, dst: HostId, weighted: &[(Mac, u32)]) {
        let mut seq = Vec::new();
        // Interleave rather than concatenate so short-term balance holds:
        // emit labels in rounds, each label appearing while weight remains.
        let max_w = weighted.iter().map(|&(_, w)| w).max().unwrap_or(0);
        for round in 0..max_w {
            for &(mac, w) in weighted {
                if round < w {
                    seq.push(mac);
                }
            }
        }
        assert!(!seq.is_empty(), "total weight must be positive");
        self.labels.insert(dst, seq);
    }

    /// The current label sequence toward `dst` (test/inspection hook).
    pub fn labels_for(&self, dst: HostId) -> Option<&[Mac]> {
        self.labels.get(&dst).map(|v| v.as_slice())
    }

    /// Forget per-flow state (between experiment phases).
    pub fn reset_flows(&mut self) {
        self.flows.clear();
    }
}

impl EdgePolicy for FlowcellScheduler {
    fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        FlowcellScheduler::set_labels(self, dst, labels);
    }

    fn current_labels(&self, dst: HostId) -> Vec<Mac> {
        self.labels_for(dst)
            .map(<[Mac]>::to_vec)
            .unwrap_or_default()
    }

    fn flowcells_created(&self) -> u64 {
        self.flowcells_created
    }

    fn path_spray_counts(&self) -> Vec<u64> {
        self.spray_counts.clone()
    }

    fn assign(&mut self, _now: SimTime, flow: FlowKey, len: u32, _retx: bool) -> PathTag {
        let labels = match self.labels.get(&flow.dst) {
            Some(l) => l,
            // No labels installed (e.g. destination on the same leaf in a
            // future extension): fall back to direct forwarding.
            None => {
                return PathTag {
                    dst_mac: Mac::host(flow.dst),
                    flowcell: 0,
                }
            }
        };
        let n = labels.len();
        let mut new_cell = false;
        let state = self.flows.entry(flow).or_insert_with(|| {
            self.flowcells_created += 1;
            new_cell = true;
            FlowState {
                bytecount: 0,
                // Stagger flows across the sequence so simultaneous flows
                // don't all start on path 0.
                current_mac: (hash_mix(flow.digest(), 0x9E37) % n as u64) as usize,
                flowcell: 1,
            }
        });
        // Algorithm 1, verbatim. Retransmitted packets run through this
        // code again, as the paper notes — no special casing.
        if state.bytecount + len as u64 > self.threshold {
            state.bytecount = len as u64;
            state.current_mac = (state.current_mac + 1) % n;
            state.flowcell += 1;
            self.flowcells_created += 1;
            new_cell = true;
        } else {
            state.bytecount += len as u64;
        }
        let tag = PathTag {
            dst_mac: labels[state.current_mac % n],
            flowcell: state.flowcell,
        };
        if new_cell {
            let path = tag.dst_mac.tree() as usize;
            if self.spray_counts.len() <= path {
                self.spray_counts.resize(path + 1, 0);
            }
            self.spray_counts[path] += 1;
        }
        tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(sport: u16) -> FlowKey {
        FlowKey::new(HostId(0), HostId(9), sport, 80)
    }

    fn labels(n: u32) -> Vec<Mac> {
        (0..n).map(|t| Mac::shadow(HostId(9), t)).collect()
    }

    fn sched(n: u32) -> FlowcellScheduler {
        let mut s = FlowcellScheduler::new();
        s.set_labels(HostId(9), labels(n));
        s
    }

    #[test]
    fn consecutive_segments_share_flowcell_until_64kb() {
        let mut s = sched(4);
        let f = flow(1);
        // Four 16 KB skbs fill exactly one flowcell.
        let tags: Vec<PathTag> = (0..4)
            .map(|_| s.assign(SimTime::ZERO, f, 16 * 1024, false))
            .collect();
        assert!(tags.windows(2).all(|w| w[0] == w[1]), "same cell: {tags:?}");
        // The fifth rotates.
        let t5 = s.assign(SimTime::ZERO, f, 16 * 1024, false);
        assert_ne!(t5.dst_mac, tags[0].dst_mac);
        assert_eq!(t5.flowcell, tags[0].flowcell + 1);
    }

    #[test]
    fn one_64kb_skb_is_one_flowcell() {
        let mut s = sched(4);
        let f = flow(1);
        let t1 = s.assign(SimTime::ZERO, f, 64 * 1024, false);
        let t2 = s.assign(SimTime::ZERO, f, 64 * 1024, false);
        let t3 = s.assign(SimTime::ZERO, f, 64 * 1024, false);
        assert_eq!(t2.flowcell, t1.flowcell + 1);
        assert_eq!(t3.flowcell, t2.flowcell + 1);
        assert_ne!(t1.dst_mac, t2.dst_mac);
    }

    #[test]
    fn round_robin_cycles_all_labels_evenly() {
        let n = 4u32;
        let mut s = sched(n);
        let f = flow(7);
        let mut counts: HashMap<Mac, u64> = HashMap::new();
        for _ in 0..400 {
            let t = s.assign(SimTime::ZERO, f, 64 * 1024, false);
            *counts.entry(t.dst_mac).or_default() += 1;
        }
        assert_eq!(counts.len(), n as usize);
        for (&mac, &c) in &counts {
            assert_eq!(c, 100, "label {mac:?} got {c}");
        }
    }

    #[test]
    fn byte_balance_invariant() {
        // Total bytes per label differ by at most one flowcell, for any
        // mix of skb sizes.
        let mut s = sched(3);
        let f = flow(3);
        let sizes = [1460u32, 40_000, 64 * 1024, 7_000, 1, 30_000, 64 * 1024];
        let mut bytes: HashMap<Mac, u64> = HashMap::new();
        for i in 0..500 {
            let len = sizes[i % sizes.len()];
            let t = s.assign(SimTime::ZERO, f, len, false);
            *bytes.entry(t.dst_mac).or_default() += len as u64;
        }
        let min = bytes.values().min().unwrap();
        let max = bytes.values().max().unwrap();
        assert!(
            max - min <= 2 * FLOWCELL_BYTES,
            "imbalance {} exceeds 2 flowcells",
            max - min
        );
    }

    #[test]
    fn flowcell_never_exceeds_threshold() {
        let mut s = sched(2);
        let f = flow(9);
        let mut cell_bytes: HashMap<u64, u64> = HashMap::new();
        let sizes = [10_000u32, 30_000, 1460, 64 * 1024, 500];
        for i in 0..300 {
            let len = sizes[i % sizes.len()];
            let t = s.assign(SimTime::ZERO, f, len, false);
            *cell_bytes.entry(t.flowcell).or_default() += len as u64;
        }
        for (&cell, &b) in &cell_bytes {
            assert!(b <= FLOWCELL_BYTES, "cell {cell} holds {b} bytes");
        }
    }

    #[test]
    fn flows_are_independent_and_staggered() {
        let mut s = sched(4);
        // Many flows: their starting labels should spread over all paths.
        let mut first_label: HashMap<Mac, u64> = HashMap::new();
        for sport in 0..64 {
            let t = s.assign(SimTime::ZERO, flow(sport), 1460, false);
            *first_label.entry(t.dst_mac).or_default() += 1;
        }
        assert_eq!(first_label.len(), 4, "flows all started on one path");
    }

    #[test]
    fn weighted_labels_realize_weights() {
        let mut s = FlowcellScheduler::new();
        let p1 = Mac::shadow(HostId(9), 0);
        let p2 = Mac::shadow(HostId(9), 1);
        let p3 = Mac::shadow(HostId(9), 2);
        // The paper's example: 0.25 / 0.5 / 0.25.
        s.set_weighted_labels(HostId(9), &[(p1, 1), (p2, 2), (p3, 1)]);
        assert_eq!(s.labels_for(HostId(9)).unwrap().len(), 4);
        let f = flow(1);
        let mut counts: HashMap<Mac, u64> = HashMap::new();
        for _ in 0..400 {
            let t = s.assign(SimTime::ZERO, f, 64 * 1024, false);
            *counts.entry(t.dst_mac).or_default() += 1;
        }
        assert_eq!(counts[&p1], 100);
        assert_eq!(counts[&p2], 200);
        assert_eq!(counts[&p3], 100);
    }

    #[test]
    fn spray_counts_track_flowcells_per_path() {
        let mut s = sched(4);
        let f = flow(1);
        for _ in 0..40 {
            s.assign(SimTime::ZERO, f, 64 * 1024, false);
        }
        let counts = s.path_spray_counts();
        assert_eq!(counts.len(), 4);
        assert_eq!(counts.iter().sum::<u64>(), s.flowcells_created);
        // Round robin balances cells across all four trees.
        assert!(counts.iter().all(|&c| c == 10), "unbalanced: {counts:?}");
    }

    #[test]
    fn no_labels_falls_back_to_direct() {
        let mut s = FlowcellScheduler::new();
        let t = s.assign(SimTime::ZERO, flow(1), 1460, false);
        assert_eq!(t.dst_mac, Mac::host(HostId(9)));
        assert_eq!(t.flowcell, 0);
    }

    #[test]
    fn retransmissions_flow_through_the_same_counter() {
        // A retransmitted skb advances the byte counter exactly like a
        // fresh one (the paper: retransmissions re-run Algorithm 1).
        let mut s = sched(2);
        let f = flow(2);
        let t1 = s.assign(SimTime::ZERO, f, 60_000, false);
        let t2 = s.assign(SimTime::ZERO, f, 60_000, true);
        assert_eq!(t2.flowcell, t1.flowcell + 1, "retx skb still rotates");
    }

    #[test]
    fn single_label_rotates_flowcell_only() {
        // The Presto+ECMP variant (Fig 14): one real-MAC label, flowcell
        // counter still advances for per-hop hashing.
        let mut s = FlowcellScheduler::new();
        s.set_labels(HostId(9), vec![Mac::host(HostId(9))]);
        let f = flow(4);
        let t1 = s.assign(SimTime::ZERO, f, 64 * 1024, false);
        let t2 = s.assign(SimTime::ZERO, f, 64 * 1024, false);
        assert_eq!(t1.dst_mac, Mac::host(HostId(9)));
        assert_eq!(t2.dst_mac, Mac::host(HostId(9)));
        assert_eq!(t2.flowcell, t1.flowcell + 1);
    }

    #[test]
    fn reset_flows_restarts_counters() {
        let mut s = sched(2);
        let f = flow(5);
        s.assign(SimTime::ZERO, f, 64 * 1024, false);
        let cells_before = s.flowcells_created;
        s.reset_flows();
        s.assign(SimTime::ZERO, f, 64 * 1024, false);
        assert_eq!(s.flowcells_created, cells_before + 1);
    }
}
