//! The centralized Presto controller.
//!
//! Responsibilities (§3.1, §3.3, generalized to tiered fabrics per §5.3):
//!
//! 1. **Spanning tree allocation.** The controller allocates link-disjoint
//!    spanning trees over the topology graph. Trees are enumerated
//!    uplink-position-major: tree (p, k) climbs from every leaf through
//!    its p-th upper-tier neighbor using the k-th parallel link, and keeps
//!    selecting the k-th continuation at higher tiers. On the paper's
//!    2-tier Clos with ν spines and γ parallel links this reproduces the
//!    classic ν·γ trees — tree (s, j) uses the j-th link between every
//!    leaf and spine s. On a 3-tier Clos it yields
//!    `aggs_per_pod · min(γ, cores_per_group)` trees.
//! 2. **Shadow MAC assignment.** One label per (destination host, tree);
//!    exact-match L2 entries route the label up at the source leaf, along
//!    the tree at every transit switch, and to the host port at the
//!    destination leaf.
//! 3. **Fast failover.** Every non-top switch with more than one uplink
//!    neighbor gets OpenFlow-style failover groups: if the uplink toward
//!    neighbor p is dead, traffic shifts to the uplink toward neighbor
//!    p+1 (transit switches carry L2 entries for *all* trees so
//!    redirected labels still route).
//! 4. **Failure response.** When told of a link failure, the controller
//!    recomputes, per (source host, destination host), the multiset of
//!    usable labels — pruning trees whose path crosses a dead link — and
//!    hands the new weighted sequences to the edge vSwitches.

use std::collections::HashMap;

use presto_netsim::{HostId, LinkId, Mac, SwitchId, Topology};

/// Quantization scale for tree weights: a healthy tree weighs
/// `WEIGHT_SCALE`, a link degraded to fraction f weighs
/// `round(f · WEIGHT_SCALE)` (min 1 while the link is up). Coarse on
/// purpose — weights become duplicated labels in the vSwitch sequence,
/// so the sequence length is bounded by `WEIGHT_SCALE` times the tree
/// count.
pub const WEIGHT_SCALE: u32 = 4;

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// One ascending hop of a spanning tree's per-leaf chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeHop {
    /// The next-tier-up switch this hop climbs to.
    pub up: SwitchId,
    /// Parallel-link index within the pair's link group (clamped to the
    /// group size when the group is narrower than the tree's index).
    pub link: usize,
}

/// A spanning tree's route through the fabric: an explicit ascending hop
/// chain per leaf, all meeting at a common root region.
///
/// This replaces the 2-tier `TreeSpec { spine, link }`: on a 2-tier Clos
/// every chain is the single hop to spine [`TreePath::position`] over
/// parallel link [`TreePath::link`]; on deeper fabrics chains carry one
/// hop per tier. The path between two leaves is recovered by walking
/// both chains to their lowest common switch ([`Controller::tree_path`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePath {
    /// The leaf uplink-neighbor position this tree climbs through (the
    /// spine index on a 2-tier Clos, the aggregation position on 3-tier).
    pub position: usize,
    /// The parallel-link / continuation index (γ index at the first hop).
    pub link: usize,
    /// Ascending hop chain per leaf, indexed by the leaf's position in
    /// `Topology::leaves`.
    pub chains: Vec<Vec<TreeHop>>,
}

impl TreePath {
    /// The tree's root switch (the top-tier switch its chains meet at).
    pub fn root(&self) -> SwitchId {
        self.chains[0].last().expect("non-empty chain").up
    }
}

/// The controller's view of the installed state.
#[derive(Debug)]
pub struct Controller {
    /// Tree id → route.
    pub trees: Vec<TreePath>,
}

impl Controller {
    /// Compute spanning trees for `topo` and install all forwarding state:
    /// basic real-MAC routing, shadow-MAC entries for every tree, and
    /// fast-failover groups at every tier below the top.
    ///
    /// # Panics
    /// Panics on a single-switch topology — there is nothing to
    /// load-balance and Presto should not be deployed there.
    pub fn install(topo: &mut Topology) -> Controller {
        Self::install_for(topo, None)
    }

    /// [`Controller::install`] restricted to an active-host subset:
    /// shadow-MAC entries (and the underlying basic routing) are
    /// installed only for destinations whose `active[h.index()]` is true
    /// (`None` means every host). Tree allocation and failover groups are
    /// host-independent and always complete. Installed state for an
    /// active host is identical to the unrestricted install, so a
    /// workload touching only active hosts behaves byte-identically —
    /// the point is that a k=32 fat-tree (8192 hosts) with a sparse
    /// workload skips the ~10⁸ L2 entries it would never look up.
    pub fn install_for(topo: &mut Topology, active: Option<&[bool]>) -> Controller {
        assert!(
            topo.tier_count() >= 2,
            "Presto controller requires a multi-path topology"
        );
        let live = |h: HostId| active.is_none_or(|a| a.get(h.index()).copied().unwrap_or(false));
        topo.install_basic_routing_for(active);

        let trees = Self::allocate_trees(topo);
        let leaves = topo.leaves.clone();
        let hosts = topo.hosts.clone();

        // Leaf tier: destination port entries plus first-hop uplinks.
        for (t, tree) in trees.iter().enumerate() {
            let t = t as u32;
            for &h in &hosts {
                if !live(h) {
                    continue;
                }
                let mac = Mac::shadow(h, t);
                let dst_leaf = topo.host_leaf[h.index()];
                // Destination leaf: label → host port.
                let down = topo.host_down[h.index()];
                topo.fabric.switch_mut(dst_leaf).install_l2(mac, down);
                // Source leaves: label → first ascending hop of the chain.
                for (li, &leaf) in leaves.iter().enumerate() {
                    if leaf != dst_leaf {
                        let hop = tree.chains[li][0];
                        let grp = &topo.pair_links[&(leaf, hop.up)];
                        let up = grp[hop.link.min(grp.len() - 1)];
                        topo.fabric.switch_mut(leaf).install_l2(mac, up);
                    }
                }
            }
        }
        // Transit tiers: entries for EVERY tree's labels (not just the
        // trees that transit this switch), so fast-failover redirected
        // traffic still routes. The paper notes Trident II-class chips
        // have 288k L2 entries — hosts × trees fits easily. A switch
        // routes a label down when the host sits below it (using the
        // tree's parallel index) and otherwise climbs toward the tree's
        // k-th continuation.
        for tier in 1..topo.tier_count() {
            let switches = topo.tiers[tier].clone();
            for &sw in &switches {
                for (t, tree) in trees.iter().enumerate() {
                    for &h in &hosts {
                        if !live(h) {
                            continue;
                        }
                        let out = if topo.host_below(sw, h) {
                            let attach = topo.host_leaf[h.index()];
                            topo.down_link_toward(sw, attach, tree.link)
                        } else {
                            let ups = topo.up_neighbors(sw);
                            let u = ups[tree.link.min(ups.len() - 1)];
                            let grp = &topo.pair_links[&(sw, u)];
                            grp[tree.link.min(grp.len() - 1)]
                        };
                        topo.fabric
                            .switch_mut(sw)
                            .install_l2(Mac::shadow(h, t as u32), out);
                    }
                }
            }
        }
        // Fast-failover groups at every non-top tier: the uplink toward
        // neighbor p backs up onto the uplink toward neighbor (p+1) % n
        // (same parallel index, clamped).
        for tier in 0..topo.tier_count() - 1 {
            let switches = topo.tiers[tier].clone();
            for &sw in &switches {
                let ups = topo.up_neighbors(sw).to_vec();
                if ups.len() <= 1 {
                    continue;
                }
                for (p, &u) in ups.iter().enumerate() {
                    let next = ups[(p + 1) % ups.len()];
                    let primaries = topo.pair_links[&(sw, u)].clone();
                    let backups = topo.pair_links[&(sw, next)].clone();
                    for (j, &primary) in primaries.iter().enumerate() {
                        let backup = backups[j.min(backups.len() - 1)];
                        topo.fabric.switch_mut(sw).install_failover(primary, backup);
                    }
                }
            }
        }

        Controller { trees }
    }

    /// Enumerate the disjoint spanning trees of `topo`: uplink-position
    /// major, continuation index minor, with the per-position fan-out
    /// limited by the narrowest leaf.
    fn allocate_trees(topo: &Topology) -> Vec<TreePath> {
        let n_pos = topo.up_neighbors(topo.leaves[0]).len();
        for &leaf in &topo.leaves {
            assert_eq!(
                topo.up_neighbors(leaf).len(),
                n_pos,
                "tree allocation requires a uniform uplink fan-out across leaves"
            );
        }
        let mut trees = Vec::new();
        for p in 0..n_pos {
            let fanout = topo
                .leaves
                .iter()
                .map(|&leaf| Self::position_fanout(topo, leaf, p))
                .min()
                .unwrap_or(0);
            for k in 0..fanout {
                let chains = topo
                    .leaves
                    .iter()
                    .map(|&leaf| Self::build_chain(topo, leaf, p, k))
                    .collect();
                trees.push(TreePath {
                    position: p,
                    link: k,
                    chains,
                });
            }
        }
        trees
    }

    /// How many disjoint trees can climb through `leaf`'s p-th uplink
    /// neighbor: the parallel-link count of that pair, further limited at
    /// each higher tier by the distinct (continuation switch, link)
    /// choices the k-th-continuation rule can reach.
    fn position_fanout(topo: &Topology, leaf: SwitchId, p: usize) -> usize {
        let first = topo.up_neighbors(leaf)[p];
        let mut cap = topo.links_between(leaf, first).len();
        let mut cur = first;
        while topo.tier_of(cur) + 1 < topo.tier_count() {
            let ups = topo.up_neighbors(cur);
            let gamma = ups
                .iter()
                .map(|&u| topo.links_between(cur, u).len())
                .min()
                .unwrap_or(0);
            cap = cap.min(ups.len().max(gamma));
            cur = ups[0];
        }
        cap
    }

    /// The ascending chain of tree (p, k) from `leaf`: first hop through
    /// uplink-neighbor position p over parallel link k, then the k-th
    /// continuation (neighbor and link clamped to what exists) until the
    /// top tier.
    fn build_chain(topo: &Topology, leaf: SwitchId, p: usize, k: usize) -> Vec<TreeHop> {
        let mut chain = Vec::new();
        let mut cur = leaf;
        let mut pos = p;
        loop {
            let ups = topo.up_neighbors(cur);
            let up = ups[pos.min(ups.len() - 1)];
            let grp_len = topo.links_between(cur, up).len();
            chain.push(TreeHop {
                up,
                link: k.min(grp_len - 1),
            });
            if topo.tier_of(up) + 1 == topo.tier_count() {
                return chain;
            }
            cur = up;
            pos = k;
        }
    }

    /// Number of allocated spanning trees (ν·γ on the 2-tier Clos).
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// The full, equal-weight label sequence toward `dst` (what every
    /// vSwitch starts with).
    pub fn labels_for(&self, dst: HostId) -> Vec<Mac> {
        (0..self.trees.len() as u32)
            .map(|t| Mac::shadow(dst, t))
            .collect()
    }

    /// The fabric links tree `t` uses between `src_leaf` and `dst_leaf`:
    /// the ascending hops of the source chain up to the lowest switch the
    /// two chains share, then the mirrored descending hops of the
    /// destination chain.
    pub fn tree_path(
        &self,
        topo: &Topology,
        t: usize,
        src_leaf: SwitchId,
        dst_leaf: SwitchId,
    ) -> Vec<LinkId> {
        let tree = &self.trees[t];
        let src_chain = &tree.chains[topo.position_in_tier(src_leaf)];
        let dst_chain = &tree.chains[topo.position_in_tier(dst_leaf)];
        let meet = src_chain
            .iter()
            .zip(dst_chain.iter())
            .position(|(s, d)| s.up == d.up)
            .expect("chains of one tree meet at its root");
        let mut links = Vec::new();
        let mut cur = src_leaf;
        for hop in &src_chain[..=meet] {
            let grp = topo.links_between(cur, hop.up);
            links.push(grp[hop.link.min(grp.len() - 1)]);
            cur = hop.up;
        }
        for j in (0..=meet).rev() {
            let below = if j == 0 {
                dst_leaf
            } else {
                dst_chain[j - 1].up
            };
            let grp = topo.links_between(dst_chain[j].up, below);
            links.push(grp[dst_chain[j].link.min(grp.len() - 1)]);
        }
        links
    }

    /// The first ascending link of tree `t` out of `leaf` — the hop every
    /// path of that tree from `leaf` shares, whatever the destination.
    /// This is the link edge feedback samples: its queue and rate tell a
    /// host at `leaf` how tree `t` is doing where it matters most (§3.1's
    /// edge-based view; congestion deeper in is visible through drops).
    /// `None` when `leaf` is not a leaf-tier switch.
    pub fn tree_uplink(&self, topo: &Topology, t: usize, leaf: SwitchId) -> Option<LinkId> {
        if !topo.is_leaf(leaf) {
            return None;
        }
        let tree = self.trees.get(t)?;
        let hop = tree.chains[topo.position_in_tier(leaf)].first()?;
        let grp = topo.links_between(leaf, hop.up);
        Some(grp[hop.link.min(grp.len() - 1)])
    }

    /// Recompute the usable label sequence from `src` to `dst`, pruning
    /// trees whose path crosses a down link. Called after the controller
    /// *learns* of a failure (the paper's "weighted" stage — the learning
    /// delay itself is modeled by the testbed).
    ///
    /// Falls back to the full sequence if every tree is dead (the fabric
    /// is partitioned; fast failover is the only hope).
    pub fn usable_labels(&self, topo: &Topology, src: HostId, dst: HostId) -> Vec<Mac> {
        let src_leaf = topo.host_leaf[src.index()];
        let dst_leaf = topo.host_leaf[dst.index()];
        if src_leaf == dst_leaf {
            return self.labels_for(dst);
        }
        let mut out = Vec::new();
        for t in 0..self.trees.len() {
            let path = self.tree_path(topo, t, src_leaf, dst_leaf);
            if path.iter().all(|&l| topo.fabric.link(l).up) {
                out.push(Mac::shadow(dst, t as u32));
            }
        }
        if out.is_empty() {
            self.labels_for(dst)
        } else {
            out
        }
    }

    /// Integer weight of tree `t` for traffic `src_leaf` → `dst_leaf`,
    /// in `0..=WEIGHT_SCALE`: 0 when any path link is down, otherwise
    /// the path's worst rate fraction quantized to `WEIGHT_SCALE` steps
    /// (a healthy tree scores `WEIGHT_SCALE`; a degraded-but-alive tree
    /// never rounds below 1, so it keeps draining at a trickle).
    pub fn tree_weight(
        &self,
        topo: &Topology,
        t: usize,
        src_leaf: SwitchId,
        dst_leaf: SwitchId,
    ) -> u32 {
        let mut frac = 1.0f64;
        for &l in &self.tree_path(topo, t, src_leaf, dst_leaf) {
            let link = topo.fabric.link(l);
            if !link.up {
                return 0;
            }
            frac = frac.min(link.rate_fraction());
        }
        ((frac * WEIGHT_SCALE as f64).round() as u32).clamp(1, WEIGHT_SCALE)
    }

    /// The weighted label multiset from `src` to `dst` (§3.1: weights are
    /// expressed by duplicating labels, e.g. `p1 p2 p3 p2`).
    ///
    /// Generalizes [`Controller::usable_labels`]: a tree crossing a down
    /// link is pruned (weight 0) exactly as before, and a tree crossing a
    /// *degraded* link is kept at reduced weight. Weights are normalized
    /// by their gcd so the all-healthy case collapses to the plain
    /// one-label-per-tree sequence, and trees are interleaved round-robin
    /// (not blocked per tree) so consecutive flowcells still spread.
    ///
    /// Falls back to the full equal-weight sequence when every tree is
    /// dead, mirroring `usable_labels`.
    pub fn weighted_labels(&self, topo: &Topology, src: HostId, dst: HostId) -> Vec<Mac> {
        let src_leaf = topo.host_leaf[src.index()];
        let dst_leaf = topo.host_leaf[dst.index()];
        if src_leaf == dst_leaf {
            return self.labels_for(dst);
        }
        let mut weights: Vec<u32> = (0..self.trees.len())
            .map(|t| self.tree_weight(topo, t, src_leaf, dst_leaf))
            .collect();
        let g = weights.iter().fold(0u32, |acc, &w| gcd(acc, w));
        if g == 0 {
            return self.labels_for(dst);
        }
        for w in &mut weights {
            *w /= g;
        }
        let max_w = *weights.iter().max().unwrap();
        let mut out = Vec::new();
        for round in 0..max_w {
            for (t, &w) in weights.iter().enumerate() {
                if round < w {
                    out.push(Mac::shadow(dst, t as u32));
                }
            }
        }
        out
    }

    /// Verify tree disjointness: no fabric link (ascending or its
    /// descending mirror) is claimed by two different trees. Returns true
    /// when the allocation is disjoint (always, by construction on the
    /// shipped builders; exposed for tests and sanity checks).
    pub fn trees_are_disjoint(&self, topo: &Topology) -> bool {
        let mut used: HashMap<LinkId, usize> = HashMap::new();
        for (t, tree) in self.trees.iter().enumerate() {
            for (li, chain) in tree.chains.iter().enumerate() {
                let mut cur = topo.leaves[li];
                for hop in chain {
                    let up_grp = topo.links_between(cur, hop.up);
                    let down_grp = topo.links_between(hop.up, cur);
                    let pair = [
                        up_grp[hop.link.min(up_grp.len() - 1)],
                        down_grp[hop.link.min(down_grp.len() - 1)],
                    ];
                    for &l in &pair {
                        if let Some(&other) = used.get(&l) {
                            if other != t {
                                return false;
                            }
                        }
                        used.insert(l, t);
                    }
                    cur = hop.up;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_netsim::{ClosSpec, ThreeTierSpec};

    fn testbed() -> (Topology, Controller) {
        let mut topo = Topology::clos(&ClosSpec::default());
        let ctl = Controller::install(&mut topo);
        (topo, ctl)
    }

    fn three_tier() -> (Topology, Controller) {
        let mut topo = Topology::three_tier(&ThreeTierSpec::default());
        let ctl = Controller::install(&mut topo);
        (topo, ctl)
    }

    #[test]
    fn allocates_nu_gamma_trees() {
        let (_, ctl) = testbed();
        assert_eq!(ctl.tree_count(), 4);

        let spec = ClosSpec {
            spines: 2,
            links_per_pair: 3,
            ..ClosSpec::default()
        };
        let mut topo = Topology::clos(&spec);
        let ctl = Controller::install(&mut topo);
        assert_eq!(ctl.tree_count(), 6);
    }

    #[test]
    fn two_tier_trees_reduce_to_spine_link_pairs() {
        // The path representation must reproduce the old TreeSpec
        // enumeration: spine-major, γ-minor, single-hop chains.
        let spec = ClosSpec {
            spines: 2,
            links_per_pair: 2,
            ..ClosSpec::default()
        };
        let mut topo = Topology::clos(&spec);
        let ctl = Controller::install(&mut topo);
        let expect: Vec<(usize, usize)> = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        let got: Vec<(usize, usize)> = ctl.trees.iter().map(|t| (t.position, t.link)).collect();
        assert_eq!(got, expect);
        for tree in &ctl.trees {
            assert_eq!(tree.chains.len(), topo.leaves.len());
            for chain in &tree.chains {
                assert_eq!(chain.len(), 1, "2-tier chains are single-hop");
                assert_eq!(chain[0].up, topo.spines[tree.position]);
                assert_eq!(chain[0].link, tree.link);
            }
            assert_eq!(tree.root(), topo.spines[tree.position]);
        }
    }

    #[test]
    fn trees_are_disjoint_by_construction() {
        let (topo, ctl) = testbed();
        assert!(ctl.trees_are_disjoint(&topo));
        let spec = ClosSpec {
            spines: 3,
            links_per_pair: 2,
            ..ClosSpec::default()
        };
        let mut topo = Topology::clos(&spec);
        let ctl = Controller::install(&mut topo);
        assert!(ctl.trees_are_disjoint(&topo));
    }

    #[test]
    fn shadow_labels_route_end_to_end() {
        let (topo, ctl) = testbed();
        // Host 0 (leaf 0) to host 12 (leaf 3) on every tree: walk the L2
        // tables hop by hop.
        let dst = HostId(12);
        for t in 0..ctl.tree_count() as u32 {
            let mac = Mac::shadow(dst, t);
            let leaf0 = topo.leaves[0];
            let up = topo
                .fabric
                .switch(leaf0)
                .l2_lookup(mac)
                .expect("leaf entry");
            // The uplink must terminate at the tree's spine.
            let spine = ctl.trees[t as usize].root();
            assert_eq!(
                topo.fabric.link(up).dst,
                presto_netsim::ids::Node::Switch(spine)
            );
            let down = topo
                .fabric
                .switch(spine)
                .l2_lookup(mac)
                .expect("spine entry");
            let dst_leaf = topo.host_leaf[dst.index()];
            assert_eq!(
                topo.fabric.link(down).dst,
                presto_netsim::ids::Node::Switch(dst_leaf)
            );
            let port = topo
                .fabric
                .switch(dst_leaf)
                .l2_lookup(mac)
                .expect("dst leaf entry");
            assert_eq!(port, topo.host_down[dst.index()]);
        }
    }

    #[test]
    fn three_tier_labels_route_cross_pod() {
        let (topo, ctl) = three_tier();
        assert_eq!(ctl.tree_count(), 2);
        assert!(ctl.trees_are_disjoint(&topo));
        // Host 0 (pod 0, ToR 0) to host 12 (pod 1, ToR 3): walk the L2
        // tables hop by hop on every tree and land on the host port.
        let dst = HostId(12);
        for t in 0..ctl.tree_count() as u32 {
            let mac = Mac::shadow(dst, t);
            let mut sw = topo.host_leaf[0];
            let mut hops = 0;
            loop {
                let out = topo
                    .fabric
                    .switch(sw)
                    .l2_lookup(mac)
                    .unwrap_or_else(|| panic!("no entry for tree {t} at {sw:?}"));
                hops += 1;
                assert!(hops <= 8, "label loop on tree {t}");
                match topo.fabric.link(out).dst {
                    presto_netsim::ids::Node::Switch(next) => sw = next,
                    presto_netsim::ids::Node::Host(h) => {
                        assert_eq!(h, dst);
                        assert_eq!(out, topo.host_down[dst.index()]);
                        break;
                    }
                }
            }
            // ToR → agg → core → agg → ToR → host: 5 L2 lookups.
            assert_eq!(hops, 5, "cross-pod path climbs to the core");
        }
    }

    #[test]
    fn three_tier_tree_path_lengths() {
        let (topo, ctl) = three_tier();
        // Cross-pod: up 2, down 2.
        let cross = ctl.tree_path(&topo, 0, topo.leaves[0], topo.leaves[2]);
        assert_eq!(cross.len(), 4);
        // Same-pod, different ToR: meet at the aggregation tier.
        let intra = ctl.tree_path(&topo, 0, topo.leaves[0], topo.leaves[1]);
        assert_eq!(intra.len(), 2);
        // All path links are distinct.
        let mut seen = cross.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn label_sequences_cover_all_trees() {
        let (_, ctl) = testbed();
        let labels = ctl.labels_for(HostId(5));
        assert_eq!(labels.len(), 4);
        for (t, &m) in labels.iter().enumerate() {
            assert_eq!(m, Mac::shadow(HostId(5), t as u32));
        }
    }

    #[test]
    fn failure_prunes_affected_trees_only() {
        let (mut topo, ctl) = testbed();
        // Kill the S1-L1 link (spine 0, leaf 0) — the Fig 17 scenario.
        let bad_up = topo.leaf_spine[&(topo.leaves[0], topo.spines[0])][0];
        let bad_down = topo.spine_leaf[&(topo.spines[0], topo.leaves[0])][0];
        topo.fabric.set_link_down(bad_up);
        topo.fabric.set_link_down(bad_down);

        // Pairs crossing leaf 0 lose tree 0.
        let labels = ctl.usable_labels(&topo, HostId(0), HostId(12));
        assert_eq!(labels.len(), 3);
        assert!(!labels.contains(&Mac::shadow(HostId(12), 0)));
        let labels = ctl.usable_labels(&topo, HostId(12), HostId(0));
        assert_eq!(labels.len(), 3);

        // Pairs not involving leaf 0 keep all four trees.
        let labels = ctl.usable_labels(&topo, HostId(4), HostId(12));
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn three_tier_core_link_failure_prunes_cross_pod_only() {
        let (mut topo, ctl) = three_tier();
        // Kill tree 0's agg→core link out of pod 0: agg (pod 0, pos 0) to
        // core (group 0, index 0).
        let agg = topo.tiers[1][0];
        let core = ctl.trees[0].chains[0][1].up;
        let up = topo.pair_links[&(agg, core)][0];
        let down = topo.pair_links[&(core, agg)][0];
        topo.fabric.set_link_down(up);
        topo.fabric.set_link_down(down);
        // Cross-pod pairs from pod 0 lose tree 0.
        let labels = ctl.usable_labels(&topo, HostId(0), HostId(12));
        assert_eq!(labels.len(), 1);
        assert!(!labels.contains(&Mac::shadow(HostId(12), 0)));
        // Same-pod pairs never climb to the core: unaffected.
        let labels = ctl.usable_labels(&topo, HostId(0), HostId(4));
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn total_failure_falls_back_to_full_set() {
        let (mut topo, ctl) = testbed();
        for s in 0..4 {
            let l = topo.leaf_spine[&(topo.leaves[0], topo.spines[s])][0];
            topo.fabric.set_link_down(l);
        }
        let labels = ctl.usable_labels(&topo, HostId(0), HostId(12));
        assert_eq!(labels.len(), 4, "partitioned: keep trying everything");
    }

    #[test]
    fn failover_groups_point_to_next_spine() {
        let (topo, _) = testbed();
        let leaf = topo.leaves[0];
        let p = topo.leaf_spine[&(leaf, topo.spines[0])][0];
        let b = topo.fabric.switch(leaf).failover_backup(p).expect("backup");
        assert_eq!(b, topo.leaf_spine[&(leaf, topo.spines[1])][0]);
        // Wraps around.
        let p3 = topo.leaf_spine[&(leaf, topo.spines[3])][0];
        let b3 = topo.fabric.switch(leaf).failover_backup(p3).unwrap();
        assert_eq!(b3, topo.leaf_spine[&(leaf, topo.spines[0])][0]);
    }

    #[test]
    fn three_tier_failover_covers_aggregation_uplinks() {
        let (topo, _) = three_tier();
        // ToR uplinks back onto the next aggregation switch.
        let tor = topo.leaves[0];
        let aggs = topo.up_neighbors(tor).to_vec();
        let p = topo.pair_links[&(tor, aggs[0])][0];
        assert_eq!(
            topo.fabric.switch(tor).failover_backup(p),
            Some(topo.pair_links[&(tor, aggs[1])][0])
        );
        // Aggregation uplinks back onto the next core of their group.
        let agg = topo.tiers[1][0];
        let cores = topo.up_neighbors(agg).to_vec();
        assert_eq!(cores.len(), 2);
        let p = topo.pair_links[&(agg, cores[0])][0];
        assert_eq!(
            topo.fabric.switch(agg).failover_backup(p),
            Some(topo.pair_links[&(agg, cores[1])][0])
        );
        // Cores are top-tier: no failover groups above them.
    }

    #[test]
    fn spines_hold_entries_for_all_trees() {
        let (topo, ctl) = testbed();
        // Every spine can route every (host, tree) label.
        for &spine in &topo.spines {
            for &h in &topo.hosts {
                for t in 0..ctl.tree_count() as u32 {
                    assert!(
                        topo.fabric
                            .switch(spine)
                            .l2_lookup(Mac::shadow(h, t))
                            .is_some(),
                        "spine {spine:?} missing shadow(h{},t{t})",
                        h.0
                    );
                }
            }
        }
    }

    #[test]
    fn three_tier_transit_switches_hold_all_labels() {
        let (topo, ctl) = three_tier();
        // Every aggregation and core switch can route every (host, tree)
        // label — redirected fast-failover traffic must never blackhole
        // at the L2 table.
        for tier in 1..topo.tier_count() {
            for &sw in &topo.tiers[tier] {
                for &h in &topo.hosts {
                    for t in 0..ctl.tree_count() as u32 {
                        assert!(
                            topo.fabric
                                .switch(sw)
                                .l2_lookup(Mac::shadow(h, t))
                                .is_some(),
                            "{sw:?} (tier {tier}) missing shadow(h{},t{t})",
                            h.0
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn usable_labels_same_leaf_is_full_set() {
        let (topo, ctl) = testbed();
        // Same-leaf pairs are returned the full label set (the policy
        // normally routes them directly anyway).
        let labels = ctl.usable_labels(&topo, HostId(0), HostId(1));
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn tree_path_returns_up_and_down_links() {
        let (topo, ctl) = testbed();
        let path = ctl.tree_path(&topo, 2, topo.leaves[0], topo.leaves[3]);
        assert_eq!(path.len(), 2);
        let spine = ctl.trees[2].root();
        assert_eq!(path[0], topo.leaf_spine[&(topo.leaves[0], spine)][0]);
        assert_eq!(path[1], topo.spine_leaf[&(spine, topo.leaves[3])][0]);
    }

    #[test]
    fn tree_uplink_is_the_first_path_hop() {
        let (topo, ctl) = testbed();
        for t in 0..ctl.tree_count() {
            for &leaf in &topo.leaves {
                let up = ctl.tree_uplink(&topo, t, leaf).expect("leaf uplink");
                // Must agree with the first link of any path from `leaf`.
                let other = if leaf == topo.leaves[0] {
                    topo.leaves[1]
                } else {
                    topo.leaves[0]
                };
                assert_eq!(up, ctl.tree_path(&topo, t, leaf, other)[0]);
            }
        }
        // Non-leaf switches have no tree uplink.
        assert!(ctl.tree_uplink(&topo, 0, topo.spines[0]).is_none());
    }

    #[test]
    fn double_failure_prunes_two_trees() {
        let (mut topo, ctl) = testbed();
        for s in [0usize, 1] {
            let up = topo.leaf_spine[&(topo.leaves[0], topo.spines[s])][0];
            let down = topo.spine_leaf[&(topo.spines[s], topo.leaves[0])][0];
            topo.fabric.set_link_down(up);
            topo.fabric.set_link_down(down);
        }
        let labels = ctl.usable_labels(&topo, HostId(0), HostId(12));
        assert_eq!(labels.len(), 2);
        assert!(!labels.contains(&Mac::shadow(HostId(12), 0)));
        assert!(!labels.contains(&Mac::shadow(HostId(12), 1)));
    }

    #[test]
    fn gamma_two_routes_through_distinct_cables() {
        let spec = ClosSpec {
            spines: 2,
            links_per_pair: 2,
            ..ClosSpec::default()
        };
        let mut topo = Topology::clos(&spec);
        let ctl = Controller::install(&mut topo);
        assert_eq!(ctl.tree_count(), 4);
        // Trees (s=0,j=0) and (s=0,j=1) use different parallel cables.
        let a = ctl.tree_path(&topo, 0, topo.leaves[0], topo.leaves[1]);
        let b = ctl.tree_path(&topo, 1, topo.leaves[0], topo.leaves[1]);
        assert_ne!(a[0], b[0]);
        assert_ne!(a[1], b[1]);
    }

    #[test]
    fn weighted_labels_healthy_equals_full_sequence() {
        let (topo, ctl) = testbed();
        assert_eq!(
            ctl.weighted_labels(&topo, HostId(0), HostId(12)),
            ctl.labels_for(HostId(12)),
            "all-healthy weights must collapse to one label per tree"
        );
    }

    #[test]
    fn weighted_labels_prunes_down_links_like_usable_labels() {
        let (mut topo, ctl) = testbed();
        let up = topo.leaf_spine[&(topo.leaves[0], topo.spines[0])][0];
        let down = topo.spine_leaf[&(topo.spines[0], topo.leaves[0])][0];
        topo.fabric.set_link_down(up);
        topo.fabric.set_link_down(down);
        assert_eq!(
            ctl.weighted_labels(&topo, HostId(0), HostId(12)),
            ctl.usable_labels(&topo, HostId(0), HostId(12)),
            "pure up/down faults must reproduce the pruning behavior"
        );
    }

    #[test]
    fn weighted_labels_derate_degraded_trees() {
        let (mut topo, ctl) = testbed();
        // Degrade tree 0's uplink from leaf 0 to half rate.
        let up = topo.leaf_spine[&(topo.leaves[0], topo.spines[0])][0];
        topo.fabric.degrade_link(up, 0.5);
        let labels = ctl.weighted_labels(&topo, HostId(0), HostId(12));
        // Weights [2,4,4,4] / gcd 2 = [1,2,2,2]: 7 labels, tree 0 once.
        assert_eq!(labels.len(), 7);
        let count = |t: u32| {
            labels
                .iter()
                .filter(|&&m| m == Mac::shadow(HostId(12), t))
                .count()
        };
        assert_eq!(count(0), 1);
        assert_eq!(count(1), 2);
        assert_eq!(count(2), 2);
        assert_eq!(count(3), 2);
        // First round still visits every tree (interleaved, not blocked).
        assert_eq!(
            &labels[..4],
            &[
                Mac::shadow(HostId(12), 0),
                Mac::shadow(HostId(12), 1),
                Mac::shadow(HostId(12), 2),
                Mac::shadow(HostId(12), 3),
            ]
        );
        // Pairs avoiding leaf 0 are unaffected.
        assert_eq!(
            ctl.weighted_labels(&topo, HostId(4), HostId(12)),
            ctl.labels_for(HostId(12))
        );
    }

    #[test]
    fn recovery_restores_full_weights() {
        let (mut topo, ctl) = testbed();
        let up = topo.leaf_spine[&(topo.leaves[0], topo.spines[0])][0];
        let down = topo.spine_leaf[&(topo.spines[0], topo.leaves[0])][0];
        topo.fabric.set_link_down(up);
        topo.fabric.set_link_down(down);
        assert_eq!(ctl.weighted_labels(&topo, HostId(0), HostId(12)).len(), 3);
        topo.fabric.set_link_up(up);
        topo.fabric.set_link_up(down);
        assert_eq!(
            ctl.weighted_labels(&topo, HostId(0), HostId(12)),
            ctl.labels_for(HostId(12)),
            "a restored link must bring its tree back at full weight"
        );
        // Same for degradation.
        topo.fabric.degrade_link(up, 0.25);
        assert_eq!(ctl.tree_weight(&topo, 0, topo.leaves[0], topo.leaves[3]), 1);
        topo.fabric.restore_link_rate(up);
        assert_eq!(
            ctl.tree_weight(&topo, 0, topo.leaves[0], topo.leaves[3]),
            WEIGHT_SCALE
        );
    }

    #[test]
    #[should_panic(expected = "multi-path")]
    fn rejects_single_switch() {
        let mut topo = Topology::single_switch(
            4,
            10_000_000_000,
            presto_simcore::SimDuration::from_micros(1),
            1 << 20,
        );
        let _ = Controller::install(&mut topo);
    }
}
