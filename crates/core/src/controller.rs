//! The centralized Presto controller.
//!
//! Responsibilities (§3.1, §3.3):
//!
//! 1. **Spanning tree allocation.** In a 2-tier Clos with ν spines and γ
//!    parallel links per (leaf, spine) pair, the controller allocates
//!    ν·γ disjoint spanning trees — tree (s, j) uses the j-th link between
//!    every leaf and spine s.
//! 2. **Shadow MAC assignment.** One label per (destination host, tree);
//!    exact-match L2 entries route the label up at the source leaf, down
//!    at the spine, and to the host port at the destination leaf.
//! 3. **Fast failover.** Each leaf gets OpenFlow-style failover groups:
//!    if the uplink to spine s is dead, traffic shifts to the uplink to
//!    spine s+1 (spines carry L2 entries for *all* trees so redirected
//!    labels still route).
//! 4. **Failure response.** When told of a link failure, the controller
//!    recomputes, per (source host, destination host), the multiset of
//!    usable labels — pruning trees whose path crosses a dead link — and
//!    hands the new weighted sequences to the edge vSwitches.

use std::collections::HashMap;

use presto_netsim::{HostId, LinkId, Mac, SwitchId, Topology};

/// Quantization scale for tree weights: a healthy tree weighs
/// `WEIGHT_SCALE`, a link degraded to fraction f weighs
/// `round(f · WEIGHT_SCALE)` (min 1 while the link is up). Coarse on
/// purpose — weights become duplicated labels in the vSwitch sequence,
/// so the sequence length is bounded by `WEIGHT_SCALE · ν · γ`.
pub const WEIGHT_SCALE: u32 = 4;

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A spanning tree's route through the fabric: spine index and parallel
/// link index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeSpec {
    /// Which spine the tree transits.
    pub spine: usize,
    /// Which of the γ parallel links it uses on every (leaf, spine) pair.
    pub link: usize,
}

/// The controller's view of the installed state.
#[derive(Debug)]
pub struct Controller {
    /// Tree id → route.
    pub trees: Vec<TreeSpec>,
}

impl Controller {
    /// Compute spanning trees for `topo` and install all forwarding state:
    /// basic real-MAC routing, shadow-MAC entries for every tree, and
    /// leaf fast-failover groups.
    ///
    /// # Panics
    /// Panics on a single-switch topology — there is nothing to
    /// load-balance and Presto should not be deployed there.
    pub fn install(topo: &mut Topology) -> Controller {
        assert!(
            !topo.spines.is_empty(),
            "Presto controller requires a multi-path topology"
        );
        topo.install_basic_routing();

        let gamma = topo.leaf_spine[&(topo.leaves[0], topo.spines[0])].len();
        let mut trees = Vec::new();
        for s in 0..topo.spines.len() {
            for j in 0..gamma {
                trees.push(TreeSpec { spine: s, link: j });
            }
        }

        let leaves = topo.leaves.clone();
        let spines = topo.spines.clone();
        let hosts = topo.hosts.clone();

        for (t, spec) in trees.iter().enumerate() {
            let t = t as u32;
            let spine = spines[spec.spine];
            for &h in &hosts {
                let mac = Mac::shadow(h, t);
                let dst_leaf = topo.host_leaf[h.index()];
                // Destination leaf: label → host port.
                let down = topo.host_down[h.index()];
                topo.fabric.switch_mut(dst_leaf).install_l2(mac, down);
                // Source leaves: label → uplink to the tree's spine.
                for &leaf in &leaves {
                    if leaf != dst_leaf {
                        let up = topo.leaf_spine[&(leaf, spine)][spec.link];
                        topo.fabric.switch_mut(leaf).install_l2(mac, up);
                    }
                }
            }
        }
        // Spines: entries for EVERY tree's labels (not just their own), so
        // fast-failover redirected traffic still routes. The paper notes
        // Trident II-class chips have 288k L2 entries — hosts × trees fits
        // easily.
        for &spine in &spines {
            for (t, _spec) in trees.iter().enumerate() {
                for &h in &hosts {
                    let dst_leaf = topo.host_leaf[h.index()];
                    // Use the same parallel-link index as the tree where
                    // possible; redirected traffic keeps its label.
                    let j = trees[t]
                        .link
                        .min(topo.spine_leaf[&(spine, dst_leaf)].len() - 1);
                    let down = topo.spine_leaf[&(spine, dst_leaf)][j];
                    topo.fabric
                        .switch_mut(spine)
                        .install_l2(Mac::shadow(h, t as u32), down);
                }
            }
        }
        // Leaf fast-failover groups: uplink toward spine s backs up onto
        // the uplink toward spine (s+1) % ν (same parallel index).
        let n_spine = spines.len();
        if n_spine > 1 {
            for &leaf in &leaves {
                for s in 0..n_spine {
                    for j in 0..gamma {
                        let primary = topo.leaf_spine[&(leaf, spines[s])][j];
                        let backup = topo.leaf_spine[&(leaf, spines[(s + 1) % n_spine])][j];
                        topo.fabric
                            .switch_mut(leaf)
                            .install_failover(primary, backup);
                    }
                }
            }
        }

        Controller { trees }
    }

    /// Number of allocated spanning trees (ν·γ).
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// The full, equal-weight label sequence toward `dst` (what every
    /// vSwitch starts with).
    pub fn labels_for(&self, dst: HostId) -> Vec<Mac> {
        (0..self.trees.len() as u32)
            .map(|t| Mac::shadow(dst, t))
            .collect()
    }

    /// The fabric links tree `t` uses between `src_leaf` and `dst_leaf`.
    pub fn tree_path(
        &self,
        topo: &Topology,
        t: usize,
        src_leaf: SwitchId,
        dst_leaf: SwitchId,
    ) -> Vec<LinkId> {
        let spec = self.trees[t];
        let spine = topo.spines[spec.spine];
        vec![
            topo.leaf_spine[&(src_leaf, spine)][spec.link],
            topo.spine_leaf[&(spine, dst_leaf)][spec.link],
        ]
    }

    /// Recompute the usable label sequence from `src` to `dst`, pruning
    /// trees whose path crosses a down link. Called after the controller
    /// *learns* of a failure (the paper's "weighted" stage — the learning
    /// delay itself is modeled by the testbed).
    ///
    /// Falls back to the full sequence if every tree is dead (the fabric
    /// is partitioned; fast failover is the only hope).
    pub fn usable_labels(&self, topo: &Topology, src: HostId, dst: HostId) -> Vec<Mac> {
        let src_leaf = topo.host_leaf[src.index()];
        let dst_leaf = topo.host_leaf[dst.index()];
        if src_leaf == dst_leaf {
            return self.labels_for(dst);
        }
        let mut out = Vec::new();
        for t in 0..self.trees.len() {
            let path = self.tree_path(topo, t, src_leaf, dst_leaf);
            if path.iter().all(|&l| topo.fabric.link(l).up) {
                out.push(Mac::shadow(dst, t as u32));
            }
        }
        if out.is_empty() {
            self.labels_for(dst)
        } else {
            out
        }
    }

    /// Integer weight of tree `t` for traffic `src_leaf` → `dst_leaf`,
    /// in `0..=WEIGHT_SCALE`: 0 when any path link is down, otherwise
    /// the path's worst rate fraction quantized to `WEIGHT_SCALE` steps
    /// (a healthy tree scores `WEIGHT_SCALE`; a degraded-but-alive tree
    /// never rounds below 1, so it keeps draining at a trickle).
    pub fn tree_weight(
        &self,
        topo: &Topology,
        t: usize,
        src_leaf: SwitchId,
        dst_leaf: SwitchId,
    ) -> u32 {
        let mut frac = 1.0f64;
        for &l in &self.tree_path(topo, t, src_leaf, dst_leaf) {
            let link = topo.fabric.link(l);
            if !link.up {
                return 0;
            }
            frac = frac.min(link.rate_fraction());
        }
        ((frac * WEIGHT_SCALE as f64).round() as u32).clamp(1, WEIGHT_SCALE)
    }

    /// The weighted label multiset from `src` to `dst` (§3.1: weights are
    /// expressed by duplicating labels, e.g. `p1 p2 p3 p2`).
    ///
    /// Generalizes [`Controller::usable_labels`]: a tree crossing a down
    /// link is pruned (weight 0) exactly as before, and a tree crossing a
    /// *degraded* link is kept at reduced weight. Weights are normalized
    /// by their gcd so the all-healthy case collapses to the plain
    /// one-label-per-tree sequence, and trees are interleaved round-robin
    /// (not blocked per tree) so consecutive flowcells still spread.
    ///
    /// Falls back to the full equal-weight sequence when every tree is
    /// dead, mirroring `usable_labels`.
    pub fn weighted_labels(&self, topo: &Topology, src: HostId, dst: HostId) -> Vec<Mac> {
        let src_leaf = topo.host_leaf[src.index()];
        let dst_leaf = topo.host_leaf[dst.index()];
        if src_leaf == dst_leaf {
            return self.labels_for(dst);
        }
        let mut weights: Vec<u32> = (0..self.trees.len())
            .map(|t| self.tree_weight(topo, t, src_leaf, dst_leaf))
            .collect();
        let g = weights.iter().fold(0u32, |acc, &w| gcd(acc, w));
        if g == 0 {
            return self.labels_for(dst);
        }
        for w in &mut weights {
            *w /= g;
        }
        let max_w = *weights.iter().max().unwrap();
        let mut out = Vec::new();
        for round in 0..max_w {
            for (t, &w) in weights.iter().enumerate() {
                if round < w {
                    out.push(Mac::shadow(dst, t as u32));
                }
            }
        }
        out
    }

    /// Verify tree disjointness: no leaf↔spine link is used by two trees.
    /// Returns true when the allocation is disjoint (always, by
    /// construction; exposed for tests and sanity checks).
    pub fn trees_are_disjoint(&self, topo: &Topology) -> bool {
        let mut used: HashMap<LinkId, usize> = HashMap::new();
        for (t, spec) in self.trees.iter().enumerate() {
            let spine = topo.spines[spec.spine];
            for &leaf in &topo.leaves {
                for &l in [
                    topo.leaf_spine[&(leaf, spine)][spec.link],
                    topo.spine_leaf[&(spine, leaf)][spec.link],
                ]
                .iter()
                {
                    if let Some(&other) = used.get(&l) {
                        if other != t {
                            return false;
                        }
                    }
                    used.insert(l, t);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_netsim::ClosSpec;

    fn testbed() -> (Topology, Controller) {
        let mut topo = Topology::clos(&ClosSpec::default());
        let ctl = Controller::install(&mut topo);
        (topo, ctl)
    }

    #[test]
    fn allocates_nu_gamma_trees() {
        let (_, ctl) = testbed();
        assert_eq!(ctl.tree_count(), 4);

        let spec = ClosSpec {
            spines: 2,
            links_per_pair: 3,
            ..ClosSpec::default()
        };
        let mut topo = Topology::clos(&spec);
        let ctl = Controller::install(&mut topo);
        assert_eq!(ctl.tree_count(), 6);
    }

    #[test]
    fn trees_are_disjoint_by_construction() {
        let (topo, ctl) = testbed();
        assert!(ctl.trees_are_disjoint(&topo));
        let spec = ClosSpec {
            spines: 3,
            links_per_pair: 2,
            ..ClosSpec::default()
        };
        let mut topo = Topology::clos(&spec);
        let ctl = Controller::install(&mut topo);
        assert!(ctl.trees_are_disjoint(&topo));
    }

    #[test]
    fn shadow_labels_route_end_to_end() {
        let (topo, ctl) = testbed();
        // Host 0 (leaf 0) to host 12 (leaf 3) on every tree: walk the L2
        // tables hop by hop.
        let dst = HostId(12);
        for t in 0..ctl.tree_count() as u32 {
            let mac = Mac::shadow(dst, t);
            let leaf0 = topo.leaves[0];
            let up = topo
                .fabric
                .switch(leaf0)
                .l2_lookup(mac)
                .expect("leaf entry");
            // The uplink must terminate at the tree's spine.
            let spine = topo.spines[ctl.trees[t as usize].spine];
            assert_eq!(
                topo.fabric.link(up).dst,
                presto_netsim::ids::Node::Switch(spine)
            );
            let down = topo
                .fabric
                .switch(spine)
                .l2_lookup(mac)
                .expect("spine entry");
            let dst_leaf = topo.host_leaf[dst.index()];
            assert_eq!(
                topo.fabric.link(down).dst,
                presto_netsim::ids::Node::Switch(dst_leaf)
            );
            let port = topo
                .fabric
                .switch(dst_leaf)
                .l2_lookup(mac)
                .expect("dst leaf entry");
            assert_eq!(port, topo.host_down[dst.index()]);
        }
    }

    #[test]
    fn label_sequences_cover_all_trees() {
        let (_, ctl) = testbed();
        let labels = ctl.labels_for(HostId(5));
        assert_eq!(labels.len(), 4);
        for (t, &m) in labels.iter().enumerate() {
            assert_eq!(m, Mac::shadow(HostId(5), t as u32));
        }
    }

    #[test]
    fn failure_prunes_affected_trees_only() {
        let (mut topo, ctl) = testbed();
        // Kill the S1-L1 link (spine 0, leaf 0) — the Fig 17 scenario.
        let bad_up = topo.leaf_spine[&(topo.leaves[0], topo.spines[0])][0];
        let bad_down = topo.spine_leaf[&(topo.spines[0], topo.leaves[0])][0];
        topo.fabric.set_link_down(bad_up);
        topo.fabric.set_link_down(bad_down);

        // Pairs crossing leaf 0 lose tree 0.
        let labels = ctl.usable_labels(&topo, HostId(0), HostId(12));
        assert_eq!(labels.len(), 3);
        assert!(!labels.contains(&Mac::shadow(HostId(12), 0)));
        let labels = ctl.usable_labels(&topo, HostId(12), HostId(0));
        assert_eq!(labels.len(), 3);

        // Pairs not involving leaf 0 keep all four trees.
        let labels = ctl.usable_labels(&topo, HostId(4), HostId(12));
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn total_failure_falls_back_to_full_set() {
        let (mut topo, ctl) = testbed();
        for s in 0..4 {
            let l = topo.leaf_spine[&(topo.leaves[0], topo.spines[s])][0];
            topo.fabric.set_link_down(l);
        }
        let labels = ctl.usable_labels(&topo, HostId(0), HostId(12));
        assert_eq!(labels.len(), 4, "partitioned: keep trying everything");
    }

    #[test]
    fn failover_groups_point_to_next_spine() {
        let (topo, _) = testbed();
        let leaf = topo.leaves[0];
        let p = topo.leaf_spine[&(leaf, topo.spines[0])][0];
        let b = topo.fabric.switch(leaf).failover_backup(p).expect("backup");
        assert_eq!(b, topo.leaf_spine[&(leaf, topo.spines[1])][0]);
        // Wraps around.
        let p3 = topo.leaf_spine[&(leaf, topo.spines[3])][0];
        let b3 = topo.fabric.switch(leaf).failover_backup(p3).unwrap();
        assert_eq!(b3, topo.leaf_spine[&(leaf, topo.spines[0])][0]);
    }

    #[test]
    fn spines_hold_entries_for_all_trees() {
        let (topo, ctl) = testbed();
        // Every spine can route every (host, tree) label.
        for &spine in &topo.spines {
            for &h in &topo.hosts {
                for t in 0..ctl.tree_count() as u32 {
                    assert!(
                        topo.fabric
                            .switch(spine)
                            .l2_lookup(Mac::shadow(h, t))
                            .is_some(),
                        "spine {spine:?} missing shadow(h{},t{t})",
                        h.0
                    );
                }
            }
        }
    }

    #[test]
    fn usable_labels_same_leaf_is_full_set() {
        let (topo, ctl) = testbed();
        // Same-leaf pairs are returned the full label set (the policy
        // normally routes them directly anyway).
        let labels = ctl.usable_labels(&topo, HostId(0), HostId(1));
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn tree_path_returns_up_and_down_links() {
        let (topo, ctl) = testbed();
        let path = ctl.tree_path(&topo, 2, topo.leaves[0], topo.leaves[3]);
        assert_eq!(path.len(), 2);
        let spine = topo.spines[ctl.trees[2].spine];
        assert_eq!(path[0], topo.leaf_spine[&(topo.leaves[0], spine)][0]);
        assert_eq!(path[1], topo.spine_leaf[&(spine, topo.leaves[3])][0]);
    }

    #[test]
    fn double_failure_prunes_two_trees() {
        let (mut topo, ctl) = testbed();
        for s in [0usize, 1] {
            let up = topo.leaf_spine[&(topo.leaves[0], topo.spines[s])][0];
            let down = topo.spine_leaf[&(topo.spines[s], topo.leaves[0])][0];
            topo.fabric.set_link_down(up);
            topo.fabric.set_link_down(down);
        }
        let labels = ctl.usable_labels(&topo, HostId(0), HostId(12));
        assert_eq!(labels.len(), 2);
        assert!(!labels.contains(&Mac::shadow(HostId(12), 0)));
        assert!(!labels.contains(&Mac::shadow(HostId(12), 1)));
    }

    #[test]
    fn gamma_two_routes_through_distinct_cables() {
        let spec = ClosSpec {
            spines: 2,
            links_per_pair: 2,
            ..ClosSpec::default()
        };
        let mut topo = Topology::clos(&spec);
        let ctl = Controller::install(&mut topo);
        assert_eq!(ctl.tree_count(), 4);
        // Trees (s=0,j=0) and (s=0,j=1) use different parallel cables.
        let a = ctl.tree_path(&topo, 0, topo.leaves[0], topo.leaves[1]);
        let b = ctl.tree_path(&topo, 1, topo.leaves[0], topo.leaves[1]);
        assert_ne!(a[0], b[0]);
        assert_ne!(a[1], b[1]);
    }

    #[test]
    fn weighted_labels_healthy_equals_full_sequence() {
        let (topo, ctl) = testbed();
        assert_eq!(
            ctl.weighted_labels(&topo, HostId(0), HostId(12)),
            ctl.labels_for(HostId(12)),
            "all-healthy weights must collapse to one label per tree"
        );
    }

    #[test]
    fn weighted_labels_prunes_down_links_like_usable_labels() {
        let (mut topo, ctl) = testbed();
        let up = topo.leaf_spine[&(topo.leaves[0], topo.spines[0])][0];
        let down = topo.spine_leaf[&(topo.spines[0], topo.leaves[0])][0];
        topo.fabric.set_link_down(up);
        topo.fabric.set_link_down(down);
        assert_eq!(
            ctl.weighted_labels(&topo, HostId(0), HostId(12)),
            ctl.usable_labels(&topo, HostId(0), HostId(12)),
            "pure up/down faults must reproduce the pruning behavior"
        );
    }

    #[test]
    fn weighted_labels_derate_degraded_trees() {
        let (mut topo, ctl) = testbed();
        // Degrade tree 0's uplink from leaf 0 to half rate.
        let up = topo.leaf_spine[&(topo.leaves[0], topo.spines[0])][0];
        topo.fabric.degrade_link(up, 0.5);
        let labels = ctl.weighted_labels(&topo, HostId(0), HostId(12));
        // Weights [2,4,4,4] / gcd 2 = [1,2,2,2]: 7 labels, tree 0 once.
        assert_eq!(labels.len(), 7);
        let count = |t: u32| {
            labels
                .iter()
                .filter(|&&m| m == Mac::shadow(HostId(12), t))
                .count()
        };
        assert_eq!(count(0), 1);
        assert_eq!(count(1), 2);
        assert_eq!(count(2), 2);
        assert_eq!(count(3), 2);
        // First round still visits every tree (interleaved, not blocked).
        assert_eq!(
            &labels[..4],
            &[
                Mac::shadow(HostId(12), 0),
                Mac::shadow(HostId(12), 1),
                Mac::shadow(HostId(12), 2),
                Mac::shadow(HostId(12), 3),
            ]
        );
        // Pairs avoiding leaf 0 are unaffected.
        assert_eq!(
            ctl.weighted_labels(&topo, HostId(4), HostId(12)),
            ctl.labels_for(HostId(12))
        );
    }

    #[test]
    fn recovery_restores_full_weights() {
        let (mut topo, ctl) = testbed();
        let up = topo.leaf_spine[&(topo.leaves[0], topo.spines[0])][0];
        let down = topo.spine_leaf[&(topo.spines[0], topo.leaves[0])][0];
        topo.fabric.set_link_down(up);
        topo.fabric.set_link_down(down);
        assert_eq!(ctl.weighted_labels(&topo, HostId(0), HostId(12)).len(), 3);
        topo.fabric.set_link_up(up);
        topo.fabric.set_link_up(down);
        assert_eq!(
            ctl.weighted_labels(&topo, HostId(0), HostId(12)),
            ctl.labels_for(HostId(12)),
            "a restored link must bring its tree back at full weight"
        );
        // Same for degradation.
        topo.fabric.degrade_link(up, 0.25);
        assert_eq!(ctl.tree_weight(&topo, 0, topo.leaves[0], topo.leaves[3]), 1);
        topo.fabric.restore_link_rate(up);
        assert_eq!(
            ctl.tree_weight(&topo, 0, topo.leaves[0], topo.leaves[3]),
            WEIGHT_SCALE
        );
    }

    #[test]
    #[should_panic(expected = "multi-path")]
    fn rejects_single_switch() {
        let mut topo = Topology::single_switch(
            4,
            10_000_000_000,
            presto_simcore::SimDuration::from_micros(1),
            1 << 20,
        );
        let _ = Controller::install(&mut topo);
    }
}
