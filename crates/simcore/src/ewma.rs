//! Exponentially-weighted moving average.
//!
//! Presto's receiver applies a flush timeout of `α · EWMA(reordering gap)`
//! to segments held at flowcell boundaries (§3.2). The same primitive also
//! backs RTT estimation in the TCP model and the CPU utilization sampler.

/// An EWMA over `f64` samples: `avg ← (1 − w)·avg + w·sample`.
///
/// Until the first sample arrives, [`Ewma::get`] returns the configured
/// initial value so that timeouts derived from it are well-defined from the
/// very first flowcell.
#[derive(Debug, Clone)]
pub struct Ewma {
    weight: f64,
    value: f64,
    samples: u64,
}

impl Ewma {
    /// Create an EWMA with sample weight `weight` (in `(0, 1]`) and initial
    /// value `initial` reported until the first update.
    ///
    /// # Panics
    /// Panics if `weight` is outside `(0, 1]` or `initial` is not finite.
    pub fn new(weight: f64, initial: f64) -> Self {
        assert!(
            weight > 0.0 && weight <= 1.0,
            "EWMA weight must be in (0,1]"
        );
        assert!(initial.is_finite(), "EWMA initial value must be finite");
        Ewma {
            weight,
            value: initial,
            samples: 0,
        }
    }

    /// Fold in one sample.
    #[inline]
    pub fn update(&mut self, sample: f64) {
        debug_assert!(sample.is_finite());
        if self.samples == 0 {
            // Seed with the first real observation rather than blending it
            // with the synthetic initial value.
            self.value = sample;
        } else {
            self.value = (1.0 - self.weight) * self.value + self.weight * sample;
        }
        self.samples += 1;
    }

    /// Current average (the initial value if no samples have been folded).
    #[inline]
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Number of samples folded so far.
    #[inline]
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_initial_before_samples() {
        let e = Ewma::new(0.25, 42.0);
        assert_eq!(e.get(), 42.0);
        assert_eq!(e.samples(), 0);
    }

    #[test]
    fn first_sample_replaces_initial() {
        let mut e = Ewma::new(0.25, 42.0);
        e.update(10.0);
        assert_eq!(e.get(), 10.0);
    }

    #[test]
    fn blends_subsequent_samples() {
        let mut e = Ewma::new(0.5, 0.0);
        e.update(10.0);
        e.update(20.0); // 0.5*10 + 0.5*20 = 15
        assert!((e.get() - 15.0).abs() < 1e-12);
        e.update(15.0); // stays 15
        assert!((e.get() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.125, 0.0);
        e.update(3.0);
        for _ in 0..500 {
            e.update(7.0);
        }
        assert!((e.get() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn stays_within_sample_range() {
        let mut e = Ewma::new(0.3, 0.0);
        let samples = [5.0, 9.0, 6.5, 8.0, 5.5];
        for s in samples {
            e.update(s);
        }
        assert!(e.get() >= 5.0 && e.get() <= 9.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn rejects_zero_weight() {
        let _ = Ewma::new(0.0, 1.0);
    }
}
