//! A fast, deterministic hasher for hot-path lookup tables.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs tens of cycles per small key — measurable when
//! the simulator does several map probes per packet per hop (switch L2 /
//! ECMP tables, per-flow edge-policy state). This module provides the
//! Firefox/rustc "Fx" multiply-and-rotate hash: a couple of cycles per
//! word, more than enough mixing for the simulator's small integer and
//! tuple keys, and — unlike the std default — free of per-process random
//! state, so iteration-independent uses cannot even accidentally observe
//! randomized bucket order across runs.
//!
//! # Determinism rule
//!
//! Swapping a map's hasher changes its *iteration order*. Only maps that
//! are never iterated (or whose iteration folds into order-insensitive
//! aggregates) may use these aliases; anything feeding `Report::digest`
//! through an ordered collection must keep `BTreeMap` or index-ordered
//! vectors (see DESIGN.md §5).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash (64-bit golden-ratio mix).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: one wrapping multiply and a rotate per 8-byte word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, no random state.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash. See the module-level determinism
/// rule before using.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash. See the module-level determinism
/// rule before using.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a collision-resistance proof, just a smoke check that the
        // mix isn't degenerate on the simulator's typical key shapes.
        let mut seen = std::collections::HashSet::new();
        for a in 0u32..64 {
            for b in 0u32..64 {
                let mut h = FxHasher::default();
                h.write_u32(a);
                h.write_u32(b);
                assert!(seen.insert(h.finish()), "collision at ({a}, {b})");
            }
        }
    }

    #[test]
    fn hash_is_stable_across_instances() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"presto"), hash(b"presto"));
        assert_ne!(hash(b"presto"), hash(b"prestp"));
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<(u32, u16), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, (i % 7) as u16), i as u64 * 3);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, (i % 7) as u16)), Some(&(i as u64 * 3)));
        }
    }
}
