//! Deterministic random numbers.
//!
//! Experiments must be exactly reproducible from a single `u64` seed, across
//! platforms and dependency upgrades, so the simulator carries its own small
//! generator instead of depending on an external crate's stream stability:
//! a xoshiro256++ core seeded through SplitMix64 (both public-domain
//! algorithms by Blackman & Vigna).
//!
//! [`DetRng::for_stream`] derives independent sub-streams (one per flow, per
//! host, per experiment repetition) so that adding a consumer never perturbs
//! the draws seen by existing ones.

/// SplitMix64 step; also used as the seed/stream mixing function.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix two words into one; used for deterministic hash-based decisions such
/// as ECMP path selection (hash of the 5-tuple).
#[inline]
pub fn hash_mix(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.rotate_left(32) ^ 0x2545_F491_4F6C_DD1D;
    splitmix64(&mut s)
}

/// A deterministic xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed the generator. Any seed (including 0) yields a valid state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derive an independent generator for a named sub-stream.
    ///
    /// `DetRng::new(seed).for_stream(k)` is stable: it depends only on
    /// `seed` and `k`, not on how many numbers the parent has drawn.
    pub fn for_stream(&self, stream: u64) -> Self {
        DetRng::new(hash_mix(self.s[0] ^ self.s[2], stream))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift with rejection for exact uniformity.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n && low < n.wrapping_neg() {
                // fast path can't be biased here
            }
            if low < n {
                let threshold = n.wrapping_neg() % n;
                if low < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; 1-u in (0,1] avoids ln(0).
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Bounded Pareto sample on `[lo, hi]` with shape `alpha` — the
    /// heavy-tailed flow-size distribution used by the trace-driven
    /// workload generator.
    pub fn bounded_pareto(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        debug_assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        let u = self.gen_f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty());
        &slice[self.gen_range(slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_of_parent_draws() {
        let parent1 = DetRng::new(99);
        let mut parent2 = DetRng::new(99);
        parent2.next_u64(); // cloned state is what matters, not draws
        let mut s1 = parent1.for_stream(5);
        // for_stream uses the state snapshot, so derive before drawing:
        let mut s2 = DetRng::new(99).for_stream(5);
        for _ in 0..16 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = DetRng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.gen_range(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = DetRng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::new(13);
        let mean = 250.0;
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() / mean < 0.05, "sample mean {m}");
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let mut r = DetRng::new(17);
        for _ in 0..10_000 {
            let x = r.bounded_pareto(1_000.0, 1_000_000.0, 1.05);
            assert!((1_000.0..=1_000_000.0).contains(&x));
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let mut r = DetRng::new(19);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.bounded_pareto(1e3, 1e7, 0.9)).collect();
        let below_10k = samples.iter().filter(|&&x| x < 1e4).count() as f64 / n as f64;
        // Most flows are mice...
        assert!(below_10k > 0.5, "only {below_10k} below 10k");
        // ...but the tail carries a disproportionate share of bytes.
        let total: f64 = samples.iter().sum();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top1pct: f64 = sorted[..n / 100].iter().sum();
        assert!(top1pct / total > 0.2, "top 1% carries {}", top1pct / total);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn hash_mix_spreads() {
        // Adjacent inputs should map to well-separated buckets.
        let buckets = 8u64;
        let mut counts = [0u32; 8];
        for i in 0..8000u64 {
            counts[(hash_mix(i, 42) % buckets) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
