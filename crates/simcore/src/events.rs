//! Deterministic event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that orders events by
//! `(time, insertion sequence)`. The sequence tiebreaker makes simulation
//! runs bit-for-bit reproducible: simultaneous events are delivered in the
//! order they were scheduled, regardless of heap internals.
//!
//! Cancellation is *lazy*: components that need to cancel timers (e.g. TCP
//! retransmission) embed a generation counter in the event payload and
//! ignore stale firings. Keeping the queue free of tombstone bookkeeping
//! keeps the hot path to two heap operations per event.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO ordering
/// among events scheduled for the same instant.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// Time of the most recently popped event; pushes earlier than this are
    /// a logic error (time travel) and panic in debug builds.
    watermark: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the watermark at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at `time`.
    ///
    /// # Panics
    /// In debug builds, panics if `time` is before the last popped event —
    /// that would mean a component tried to schedule into the past.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.watermark,
            "scheduled event at {time:?} before current time {:?}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Remove and return the earliest event, advancing the watermark.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.watermark = s.time;
            (s.time, s.event)
        })
    }

    /// The timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled; useful for instrumentation.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drop all pending events (used when tearing down a scenario early).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 1);
        q.push(SimTime::from_nanos(10), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        // Schedule relative to the popped time, as handlers do.
        q.push(SimTime::from_nanos(7), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), ());
        q.pop();
        q.push(SimTime::from_micros(5), ());
    }

    #[test]
    fn peek_len_clear() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), 9);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn large_fuzz_is_sorted() {
        // Pseudo-random times via an LCG; verify global pop order.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x1234_5678;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            q.push(SimTime::from_nanos(x % 1_000_000), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        // Watermark advanced with pops.
        assert!(last <= SimTime::ZERO + SimDuration::from_millis(1));
    }
}
