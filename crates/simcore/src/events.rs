//! Deterministic event queues.
//!
//! Two implementations share one contract: events are delivered in
//! `(time, insertion sequence)` order, so simultaneous events fire in the
//! order they were scheduled and simulation runs are bit-for-bit
//! reproducible regardless of queue internals.
//!
//! * [`EventQueue`] — the default: a calendar queue (timing wheel with a
//!   sorted overflow tier). Near-horizon events, which dominate link and
//!   NIC scheduling, cost O(1) amortized per push/pop; far timers (RTOs,
//!   scenario markers) sit in a binary-heap overflow tier and migrate
//!   into the wheel as the cursor approaches them.
//! * [`HeapEventQueue`] — the original thin wrapper over
//!   [`std::collections::BinaryHeap`]. Kept as the reference
//!   implementation: the trace-equality tests below assert both queues
//!   pop identical `(time, seq, event)` sequences, and the benchmarks
//!   race them head-to-head.
//!
//! Cancellation is *lazy*: components that need to cancel timers (e.g. TCP
//! retransmission) embed a generation counter in the event payload and
//! ignore stale firings. Keeping the queue free of tombstone bookkeeping
//! keeps the hot path to a couple of cheap operations per event.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// A heap entry for the arena-backed queues: the `(time, seq)` sort key
/// plus an index into an [`Arena`] holding the payload. Keeping heap
/// entries at 24 bytes (instead of the full event, ~80 for the
/// simulator's `Event`) means sift operations move keys, not payloads —
/// the "SoA" half of the arena/SoA layout.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Key {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) idx: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Slab storage for pending event payloads, addressed by the `idx` of a
/// [`Key`]. Freed slots are recycled through a free list, so steady-state
/// simulation reuses a compact block of memory instead of churning the
/// allocator with one box per event.
pub(crate) struct Arena<E> {
    slots: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> Default for Arena<E> {
    fn default() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<E> Arena<E> {
    #[inline]
    pub(crate) fn insert(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none());
                self.slots[idx as usize] = Some(event);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena capacity");
                self.slots.push(Some(event));
                idx
            }
        }
    }

    #[inline]
    pub(crate) fn take(&mut self, idx: u32) -> E {
        let e = self.slots[idx as usize].take().expect("live arena slot");
        self.free.push(idx);
        e
    }

    pub(crate) fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Slots in the wheel. Power of two so slot lookup is a mask.
const SLOTS: usize = 1024;
/// log2 of the bucket width in nanoseconds: 4096 ns per bucket.
///
/// Tuned for the simulator's event mix: one MTU transmission at 10 Gbps
/// is ~1.2 µs, NIC coalescing 20 µs, GRO holds ≤ 85 µs — all land within
/// the `SLOTS * 4096 ns ≈ 4.2 ms` horizon, leaving only RTO-scale timers
/// (10 ms+) and scenario bookkeeping for the overflow tier.
const WIDTH_SHIFT: u32 = 12;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
const WORDS: usize = SLOTS / 64;

#[inline]
fn bucket_of(time: SimTime) -> u64 {
    time.as_nanos() >> WIDTH_SHIFT
}

/// An event classifier: maps an event to a row of a [`QueueProfile`].
type Classifier<E> = fn(&E) -> usize;

/// Per-event-type profile of a queue: how many events of each class were
/// scheduled and how far ahead of "now" they were scheduled (dwell). Fed
/// by an [`EventQueue::enable_profiler`] classifier; read by the
/// telemetry layer after a run.
#[derive(Debug, Clone)]
pub struct QueueProfile {
    names: &'static [&'static str],
    counts: Vec<u64>,
    dwell_ns: Vec<u64>,
}

impl QueueProfile {
    pub(crate) fn new(names: &'static [&'static str]) -> Self {
        QueueProfile {
            names,
            counts: vec![0; names.len()],
            dwell_ns: vec![0; names.len()],
        }
    }

    /// Class names, in table order.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Events scheduled per class.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total push-to-due nanoseconds per class. Divide by the count for
    /// the mean scheduling horizon of that event type.
    pub fn dwell_ns(&self) -> &[u64] {
        &self.dwell_ns
    }

    #[inline]
    pub(crate) fn record(&mut self, class: usize, dwell_ns: u64) {
        // Out-of-range classes clamp to the last entry so a buggy
        // classifier skews one row instead of panicking mid-run.
        let i = class.min(self.counts.len().saturating_sub(1));
        self.counts[i] += 1;
        self.dwell_ns[i] += dwell_ns;
    }
}

/// A priority queue of timestamped events with deterministic FIFO ordering
/// among events scheduled for the same instant, implemented as a calendar
/// queue.
///
/// # Invariants
///
/// * Every wheel-resident event has a bucket in `[cur_bucket, cur_bucket +
///   SLOTS)`; within that window `bucket & SLOT_MASK` is injective, so a
///   slot holds events of exactly one bucket.
/// * Every overflow-resident event has a bucket `>= cur_bucket + SLOTS`.
///   Whenever the cursor advances, overflow events that fell inside the
///   new window migrate into the wheel, preserving this.
/// * Together these mean the wheel, when non-empty, holds the global
///   minimum — `pop` only ever needs the first occupied slot at or after
///   the cursor.
pub struct EventQueue<E> {
    /// Per-slot pending event keys, min-ordered by `(time, seq)`. A slot
    /// heap is tiny (one bucket's worth), so push/pop are effectively
    /// O(1). Heaps hold 24-byte [`Key`]s; payloads live in `arena`.
    slots: Vec<BinaryHeap<Key>>,
    /// One bit per slot: set iff the slot heap is non-empty.
    occupied: [u64; WORDS],
    /// Events beyond the wheel horizon, min-ordered by `(time, seq)`.
    overflow: BinaryHeap<Key>,
    /// Payload storage for every pending event, wheel and overflow alike.
    arena: Arena<E>,
    /// Bucket index the wheel window starts at; never decreases while
    /// events are pending.
    cur_bucket: u64,
    len: usize,
    /// Peak value of `len` since construction or the last `clear()`.
    high_water: usize,
    next_seq: u64,
    /// Time of the most recently popped event; pushes earlier than this are
    /// a logic error (time travel) and panic in debug builds.
    watermark: SimTime,
    /// Optional per-event-type profiling: a classifier mapping events to
    /// rows of a [`QueueProfile`]. `None` (the default) costs one branch
    /// per push.
    profiler: Option<(Classifier<E>, QueueProfile)>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the watermark at t = 0.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.resize_with(SLOTS, BinaryHeap::new);
        EventQueue {
            slots,
            occupied: [0; WORDS],
            overflow: BinaryHeap::new(),
            arena: Arena::default(),
            cur_bucket: 0,
            len: 0,
            high_water: 0,
            next_seq: 0,
            watermark: SimTime::ZERO,
            profiler: None,
        }
    }

    /// Schedule `event` to fire at `time`.
    ///
    /// # Panics
    /// In debug builds, panics if `time` is before the last popped event —
    /// that would mean a component tried to schedule into the past.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.watermark,
            "scheduled event at {time:?} before current time {:?}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
        if let Some((classify, profile)) = &mut self.profiler {
            // Pushes happen at the watermark (the event being dispatched),
            // so push-to-due is exactly `time - watermark`.
            profile.record(
                classify(&event),
                time.saturating_since(self.watermark).as_nanos(),
            );
        }
        // In release builds a past push (already a logic error) clamps into
        // the cursor bucket instead of corrupting the window invariant.
        let bucket = bucket_of(time).max(self.cur_bucket);
        let idx = self.arena.insert(event);
        let key = Key { time, seq, idx };
        if bucket < self.cur_bucket + SLOTS as u64 {
            self.insert_wheel(bucket, key);
        } else {
            self.overflow.push(key);
        }
    }

    #[inline]
    fn insert_wheel(&mut self, bucket: u64, s: Key) {
        let slot = (bucket & SLOT_MASK) as usize;
        self.slots[slot].push(s);
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    /// First occupied slot in circular order starting at the cursor slot,
    /// as a bucket offset `0..SLOTS` from `cur_bucket`.
    #[inline]
    fn first_occupied_offset(&self) -> Option<u64> {
        let start = (self.cur_bucket & SLOT_MASK) as usize;
        let (w0, b0) = (start / 64, start % 64);
        for i in 0..=WORDS {
            let w = (w0 + i) % WORDS;
            let mut word = self.occupied[w];
            if i == 0 {
                word &= !0u64 << b0;
            } else if i == WORDS {
                word &= (1u64 << b0) - 1;
            }
            if word != 0 {
                let slot = w * 64 + word.trailing_zeros() as usize;
                let offset = (slot as u64).wrapping_sub(self.cur_bucket) & SLOT_MASK;
                return Some(offset);
            }
        }
        None
    }

    /// Move overflow events that now fall inside the window into the wheel.
    fn migrate_overflow(&mut self) {
        let horizon = self.cur_bucket + SLOTS as u64;
        while let Some(head) = self.overflow.peek() {
            let bucket = bucket_of(head.time);
            if bucket >= horizon {
                break;
            }
            let s = self.overflow.pop().expect("peeked element exists");
            self.insert_wheel(bucket, s);
        }
    }

    /// Remove and return the earliest event, advancing the watermark.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let offset = match self.first_occupied_offset() {
            Some(off) => off,
            None => {
                // Wheel empty: re-anchor the window at the overflow
                // minimum and pull the near tail of the overflow in.
                let head = self.overflow.peek().expect("len > 0 but queues empty");
                self.cur_bucket = bucket_of(head.time);
                self.migrate_overflow();
                0
            }
        };
        if offset > 0 {
            self.cur_bucket += offset;
            // The window moved: overflow events inside it must migrate
            // before they could be skipped over. They land at buckets
            // beyond the old horizon, so the slot found above still holds
            // the minimum.
            self.migrate_overflow();
        }
        let slot = (self.cur_bucket & SLOT_MASK) as usize;
        let s = self.slots[slot].pop().expect("occupied slot is non-empty");
        if self.slots[slot].is_empty() {
            self.occupied[slot / 64] &= !(1u64 << (slot % 64));
        }
        self.len -= 1;
        self.watermark = s.time;
        Some((s.time, self.arena.take(s.idx)))
    }

    /// The timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        match self.first_occupied_offset() {
            // Wheel non-empty: its minimum beats every overflow event.
            Some(offset) => {
                let slot = ((self.cur_bucket + offset) & SLOT_MASK) as usize;
                self.slots[slot].peek().map(|s| s.time)
            }
            None => self.overflow.peek().map(|s| s.time),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled; useful for instrumentation.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Peak number of simultaneously pending events since construction or
    /// the last [`EventQueue::clear`]. The telemetry sampler reads this to
    /// size the event-queue occupancy track.
    #[inline]
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Start classifying pushed events into a [`QueueProfile`] with
    /// `names.len()` rows. `classify` maps an event to its row; values out
    /// of range clamp to the last row. Replaces any previous profile.
    pub fn enable_profiler(&mut self, names: &'static [&'static str], classify: fn(&E) -> usize) {
        assert!(!names.is_empty(), "profiler needs at least one class");
        self.profiler = Some((classify, QueueProfile::new(names)));
    }

    /// The accumulated profile, if [`EventQueue::enable_profiler`] was
    /// called.
    pub fn profile(&self) -> Option<&QueueProfile> {
        self.profiler.as_ref().map(|(_, p)| p)
    }

    /// Drop all pending events and rewind the watermark to t = 0, so a
    /// torn-down queue can host a fresh scenario. `scheduled_total` keeps
    /// counting across clears; the high-water mark and any profile reset
    /// with the scenario.
    pub fn clear(&mut self) {
        for w in 0..WORDS {
            let mut word = self.occupied[w];
            while word != 0 {
                let slot = w * 64 + word.trailing_zeros() as usize;
                self.slots[slot].clear();
                word &= word - 1;
            }
            self.occupied[w] = 0;
        }
        self.overflow.clear();
        self.arena.clear();
        self.cur_bucket = 0;
        self.len = 0;
        self.high_water = 0;
        self.watermark = SimTime::ZERO;
        if let Some((_, profile)) = &mut self.profiler {
            *profile = QueueProfile::new(profile.names);
        }
    }
}

/// The original [`std::collections::BinaryHeap`]-backed queue. Same
/// contract as [`EventQueue`]; kept as the reference implementation for
/// trace-equality tests and head-to-head benchmarks.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    high_water: usize,
    watermark: SimTime,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// An empty queue with the watermark at t = 0.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at `time`. Same contract as
    /// [`EventQueue::push`].
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.watermark,
            "scheduled event at {time:?} before current time {:?}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Remove and return the earliest event, advancing the watermark.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.watermark = s.time;
            (s.time, s.event)
        })
    }

    /// The timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Peak number of simultaneously pending events since construction or
    /// the last [`HeapEventQueue::clear`].
    #[inline]
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Drop all pending events and rewind the watermark to t = 0. The
    /// high-water mark resets with the scenario.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.high_water = 0;
        self.watermark = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 1);
        q.push(SimTime::from_nanos(10), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        // Schedule relative to the popped time, as handlers do.
        q.push(SimTime::from_nanos(7), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), ());
        q.pop();
        q.push(SimTime::from_micros(5), ());
    }

    #[test]
    fn peek_len_clear() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), 9);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn clear_rewinds_watermark() {
        // Regression: clear() used to leave the watermark at the last
        // popped time, so a reused queue rejected fresh-scenario events
        // starting from t = 0 in debug builds.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 1);
        assert!(q.pop().is_some());
        q.clear();
        q.push(SimTime::from_nanos(1), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 2)));

        let mut h = HeapEventQueue::new();
        h.push(SimTime::from_secs(5), 1);
        assert!(h.pop().is_some());
        h.clear();
        h.push(SimTime::from_nanos(1), 2);
        assert_eq!(h.pop(), Some((SimTime::from_nanos(1), 2)));
    }

    #[test]
    fn high_water_mark_tracks_peak_and_resets_on_clear() {
        // Extends the PR 1 clear() regression: the high-water mark must
        // reflect the peak backlog of the *current* scenario, not the
        // queue's lifetime, on both implementations.
        let mut q = EventQueue::new();
        let mut h = HeapEventQueue::new();
        assert_eq!(q.high_water_mark(), 0);
        assert_eq!(h.high_water_mark(), 0);
        for i in 0..5u64 {
            q.push(SimTime::from_nanos(10 + i), i);
            h.push(SimTime::from_nanos(10 + i), i);
        }
        q.pop();
        h.pop();
        // Draining does not lower the mark.
        assert_eq!(q.high_water_mark(), 5);
        assert_eq!(h.high_water_mark(), 5);
        q.push(SimTime::from_nanos(100), 9);
        h.push(SimTime::from_nanos(100), 9);
        assert_eq!(
            q.high_water_mark(),
            5,
            "4 pending + 1 push stays below peak"
        );
        assert_eq!(h.high_water_mark(), 5);
        q.clear();
        h.clear();
        assert_eq!(q.high_water_mark(), 0);
        assert_eq!(h.high_water_mark(), 0);
        // A fresh scenario establishes a fresh peak.
        q.push(SimTime::from_nanos(1), 1);
        h.push(SimTime::from_nanos(1), 1);
        assert_eq!(q.high_water_mark(), 1);
        assert_eq!(h.high_water_mark(), 1);
    }

    #[test]
    fn profiler_counts_and_dwell() {
        const NAMES: &[&str] = &["even", "odd"];
        let mut q: EventQueue<u64> = EventQueue::new();
        q.enable_profiler(NAMES, |e| (*e % 2) as usize);
        q.push(SimTime::from_nanos(100), 0); // even, dwell 100
        q.push(SimTime::from_nanos(40), 1); // odd, dwell 40
        q.pop(); // watermark -> 40
        q.push(SimTime::from_nanos(90), 3); // odd, dwell 50
        q.push(SimTime::from_nanos(41), 7); // class 7 clamps to last row
        let p = q.profile().expect("profiler enabled");
        assert_eq!(p.names(), NAMES);
        assert_eq!(p.counts(), &[1, 3]);
        assert_eq!(p.dwell_ns(), &[100, 40 + 50 + 1]);
        q.clear();
        let p = q.profile().expect("profile survives clear");
        assert_eq!(p.counts(), &[0, 0]);
    }

    #[test]
    fn large_fuzz_is_sorted() {
        // Pseudo-random times via an LCG; verify global pop order.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x1234_5678;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push(SimTime::from_nanos(x % 1_000_000), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        // Watermark advanced with pops.
        assert!(last <= SimTime::ZERO + SimDuration::from_millis(1));
    }

    #[test]
    fn far_timers_go_through_overflow_and_return() {
        let mut q = EventQueue::new();
        // Far beyond the wheel horizon (~4.2 ms): an RTO-scale timer.
        q.push(SimTime::from_millis(200), "rto");
        q.push(SimTime::from_micros(5), "tx");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
        assert_eq!(q.pop().unwrap().1, "tx");
        // Cursor must chase the overflow event, not lose it.
        assert_eq!(q.pop(), Some((SimTime::from_millis(200), "rto")));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_migration_preserves_order() {
        // Regression for the migration counterexample: an overflow event
        // must not be bypassed by a later wheel event pushed after the
        // cursor advanced close to the overflow's bucket.
        let mut q = EventQueue::new();
        let horizon = SimDuration::from_nanos((SLOTS as u64) << WIDTH_SHIFT);
        let far = SimTime::ZERO + horizon + SimDuration::from_micros(1);
        q.push(far, "far");
        q.push(SimTime::from_nanos(10), "near");
        assert_eq!(q.pop().unwrap().1, "near");
        // Now schedule just after `far`: lands in the wheel only if the
        // window has moved; order must still be far-first.
        q.push(far + SimDuration::from_nanos(1), "later");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    /// Deterministic pseudo-random schedule driver: mirrors every
    /// operation on both queue implementations and asserts identical
    /// `(time, event)` pop traces. Events carry their seq as identity, so
    /// this also proves the `(time, seq)` tiebreak matches.
    fn assert_trace_equal(ops: u64, seed: u64) {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut x = seed | 1;
        let mut next_id = 0u64;
        let mut now_ns = 0u64;
        let mut rng = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        for _ in 0..ops {
            let r = rng();
            if r % 4 == 0 && !cal.is_empty() {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "pop divergence at event {next_id}");
                now_ns = a.unwrap().0.as_nanos();
            } else {
                // Mix of horizons: same-instant bursts, near (sub-bucket
                // to a few buckets), and far overflow timers.
                let delta = match r % 10 {
                    0 => 0,
                    1..=5 => rng() % 3_000,
                    6..=8 => rng() % 500_000,
                    _ => 5_000_000 + rng() % 50_000_000,
                };
                let t = SimTime::from_nanos(now_ns + delta);
                cal.push(t, next_id);
                heap.push(t, next_id);
                next_id += 1;
            }
            assert_eq!(cal.len(), heap.len());
            assert_eq!(cal.peek_time(), heap.peek_time());
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b, "drain divergence");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn trace_equality_100k_fuzz() {
        // ~100k scheduled events across pushes and drains.
        assert_trace_equal(140_000, 0xD1CE_BEEF);
    }

    #[test]
    fn trace_equality_multiple_seeds() {
        for seed in [1, 42, 0xFFFF_FFFF_0000_0001, 0x9E3779B97F4A7C15] {
            assert_trace_equal(8_000, seed);
        }
    }

    #[test]
    fn empty_wheel_reanchors_far_ahead() {
        let mut q = EventQueue::new();
        // Drain fully, then schedule way past the horizon repeatedly.
        for round in 1u64..5 {
            let t = SimTime::from_millis(round * 100);
            q.push(t, round);
            assert_eq!(q.peek_time(), Some(t));
            assert_eq!(q.pop(), Some((t, round)));
        }
        assert!(q.is_empty());
    }
}
