//! Deterministic discrete-event simulation core.
//!
//! This crate provides the building blocks every other crate in the Presto
//! reproduction rests on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`EventQueue`] — a deterministic priority queue of timestamped events,
//! * [`Ewma`] — the exponentially-weighted moving average used by Presto's
//!   adaptive GRO flush timeout (§3.2 of the paper),
//! * [`rng`] — seeded, stream-split random number helpers so that every
//!   experiment is exactly reproducible from a single `u64` seed.
//!
//! Determinism is a design requirement (see DESIGN.md §5): two events
//! scheduled for the same instant are popped in the order they were pushed,
//! which the event queue enforces with a monotone sequence number.

pub mod events;
pub mod ewma;
pub mod rng;
pub mod time;

pub use events::{EventQueue, HeapEventQueue, QueueProfile};
pub use ewma::Ewma;
pub use time::{SimDuration, SimTime};
