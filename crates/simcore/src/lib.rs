//! Deterministic discrete-event simulation core.
//!
//! This crate provides the building blocks every other crate in the Presto
//! reproduction rests on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`EventQueue`] — a deterministic priority queue of timestamped events,
//! * [`ShardedQueue`] — the same contract over per-domain wheels with
//!   conservative lookahead-windowed mailboxes (DESIGN.md §12),
//! * [`FxHashMap`] — a fast deterministic-by-construction hasher for
//!   never-iterated hot-path lookup tables,
//! * [`Ewma`] — the exponentially-weighted moving average used by Presto's
//!   adaptive GRO flush timeout (§3.2 of the paper),
//! * [`rng`] — seeded, stream-split random number helpers so that every
//!   experiment is exactly reproducible from a single `u64` seed.
//!
//! Determinism is a design requirement (see DESIGN.md §5): two events
//! scheduled for the same instant are popped in the order they were pushed,
//! which the event queue enforces with a monotone sequence number.

pub mod events;
pub mod ewma;
pub mod fxhash;
pub mod rng;
pub mod shard;
pub mod time;

pub use events::{EventQueue, HeapEventQueue, QueueProfile};
pub use ewma::Ewma;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use shard::{ShardStats, ShardTarget, ShardedQueue};
pub use time::{SimDuration, SimTime};
