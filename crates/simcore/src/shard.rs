//! Sharded conservative event queue: per-domain calendar wheels with
//! lookahead-windowed cross-domain mailboxes.
//!
//! [`ShardedQueue`] partitions pending events across *domains* (fabric
//! partitions chosen by the topology graph — per pod, or per ToR group)
//! plus one *global* lane for scenario-wide bookkeeping (warmup marks,
//! faults, controller notifications). Each domain owns an independent
//! wheel; events an executing domain schedules for **another** domain are
//! not pushed into the destination wheel directly but through a
//! per-`(src domain, dst domain)` mailbox, and only become visible when
//! the mailboxes are drained at a synchronization epoch.
//!
//! # The conservative protocol
//!
//! The classic Chandy–Misra–Bryant argument: a domain may safely run
//! ahead of its neighbors as long as no neighbor can send it an event
//! earlier than the *lookahead* — here the minimum propagation delay over
//! the boundary links between domains. The queue tracks a window
//! `[window_start, window_end)` with `window_end = min pending time +
//! lookahead` fixed at the epoch boundary. While executing inside the
//! window, every cross-domain handoff must carry a fire time `>=
//! window_end` (asserted in debug builds); it therefore cannot be the
//! global minimum before the next epoch drains it, so leaving it parked
//! in a mailbox never changes the execution order. When the earliest
//! pending event reaches `window_end`, all mailboxes drain in
//! `(time, seq)` order into their destination wheels and a new window
//! opens.
//!
//! # Determinism
//!
//! Dispatch order is the exact global `(time, seq)` order — the pop path
//! k-way-merges the wheel heads — so a simulation driven by this queue
//! processes events in byte-for-byte the same order at any domain count,
//! including 1. Mailboxes only defer *visibility* of events that the
//! lookahead proves cannot fire yet. `seq` comes from one shared counter,
//! so `(time, seq)` keys are identical to the serial [`EventQueue`]'s.
//!
//! Storage is the same arena/SoA layout as [`EventQueue`]: wheels and
//! mailboxes hold 24-byte keys, payloads live in one shared `Arena`.
//!
//! [`EventQueue`]: crate::events::EventQueue

use std::collections::BinaryHeap;

use crate::events::{Arena, Key, QueueProfile};
use crate::time::{SimDuration, SimTime};

/// Where a pushed event should land, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardTarget {
    /// Scenario-wide bookkeeping: always visible to the merge.
    Global,
    /// A specific fabric domain (host, switch, or link owner).
    Domain(usize),
    /// Whatever domain is currently executing (context-bound timers such
    /// as RTOs and application continuations).
    Current,
}

/// Counters describing how much cross-domain traffic the run generated;
/// used by benches and docs, not by any digest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Synchronization epochs (mailbox drains).
    pub epochs: u64,
    /// Events that crossed a domain boundary through a mailbox.
    pub handoffs: u64,
}

/// A deterministic sharded event queue. Same external contract as
/// [`EventQueue`](crate::events::EventQueue) — `(time, seq)` FIFO pops —
/// plus domain routing on push.
pub struct ShardedQueue<E> {
    /// Per-domain wheels, `wheels[domains]` being the global lane.
    wheels: Vec<BinaryHeap<Key>>,
    /// Payloads for every pending event (wheels and mailboxes).
    arena: Arena<E>,
    /// Flattened `(src, dst)` mailboxes: `mailboxes[src * domains + dst]`.
    mailboxes: Vec<Vec<Key>>,
    /// Total keys parked in mailboxes.
    parked: usize,
    domains: usize,
    /// Wheel index currently executing (set by `pop`); starts at the
    /// global lane so setup-time pushes are direct.
    current: usize,
    lookahead: SimDuration,
    /// Epoch boundary: cross-domain handoffs must fire at or after this.
    window_end: SimTime,
    len: usize,
    high_water: usize,
    next_seq: u64,
    watermark: SimTime,
    profiler: Option<ShardProfiler<E>>,
    stats: ShardStats,
}

/// Optional event-name profiler: classification function plus the
/// per-name counters it feeds.
type ShardProfiler<E> = (fn(&E) -> usize, QueueProfile);

impl<E> ShardedQueue<E> {
    /// An empty queue over `domains` fabric domains with the given
    /// conservative lookahead (minimum boundary-link propagation delay).
    pub fn new(domains: usize, lookahead: SimDuration) -> Self {
        assert!(domains >= 1, "need at least one domain");
        ShardedQueue {
            wheels: (0..=domains).map(|_| BinaryHeap::new()).collect(),
            arena: Arena::default(),
            mailboxes: (0..domains * domains).map(|_| Vec::new()).collect(),
            parked: 0,
            domains,
            current: domains,
            lookahead,
            window_end: SimTime::ZERO,
            len: 0,
            high_water: 0,
            next_seq: 0,
            watermark: SimTime::ZERO,
            profiler: None,
            stats: ShardStats::default(),
        }
    }

    /// Number of fabric domains (excluding the global lane).
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// Cross-domain traffic counters.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Schedule `event` at `time` for `target`.
    ///
    /// Routing: global events and events for the executing domain go
    /// straight into a wheel. An event for *another* domain is parked in
    /// the `(current, target)` mailbox until the next epoch; the
    /// conservative contract — `time >= window_end` — is asserted in
    /// debug builds. Pushes from the global lane are always direct (the
    /// global lane runs at the merge frontier, so there is nothing to
    /// defer).
    #[inline]
    pub fn push(&mut self, time: SimTime, target: ShardTarget, event: E) {
        debug_assert!(
            time >= self.watermark,
            "scheduled event at {time:?} before current time {:?}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
        if let Some((classify, profile)) = &mut self.profiler {
            profile.record(
                classify(&event),
                time.saturating_since(self.watermark).as_nanos(),
            );
        }
        let idx = self.arena.insert(event);
        let key = Key { time, seq, idx };
        let wheel = match target {
            ShardTarget::Global => self.domains,
            ShardTarget::Current => self.current,
            ShardTarget::Domain(d) => {
                debug_assert!(d < self.domains, "domain {d} out of range");
                if self.current == self.domains || self.current == d {
                    d
                } else {
                    // Cross-domain handoff: park in the mailbox. The
                    // lookahead guarantees it cannot fire inside the
                    // current window.
                    debug_assert!(
                        time >= self.window_end,
                        "cross-domain handoff at {time:?} inside window ending {:?} \
                         (lookahead {:?} too large for this boundary)",
                        self.window_end,
                        self.lookahead
                    );
                    self.mailboxes[self.current * self.domains + d].push(key);
                    self.parked += 1;
                    self.stats.handoffs += 1;
                    return;
                }
            }
        };
        self.wheels[wheel].push(key);
    }

    /// The `(wheel, key)` of the earliest visible event, merging all
    /// wheel heads in `(time, seq)` order.
    #[inline]
    fn min_head(&self) -> Option<(usize, Key)> {
        let mut best: Option<(usize, Key)> = None;
        for (i, w) in self.wheels.iter().enumerate() {
            if let Some(&k) = w.peek() {
                let better = match best {
                    None => true,
                    Some((_, b)) => (k.time, k.seq) < (b.time, b.seq),
                };
                if better {
                    best = Some((i, k));
                }
            }
        }
        best
    }

    /// Synchronization epoch: drain every mailbox into its destination
    /// wheel in `(time, seq)` order.
    fn drain_mailboxes(&mut self) {
        if self.parked == 0 {
            return;
        }
        self.stats.epochs += 1;
        for src in 0..self.domains {
            for dst in 0..self.domains {
                let boxed = &mut self.mailboxes[src * self.domains + dst];
                if boxed.is_empty() {
                    continue;
                }
                // Deterministic drain order within one mailbox: (time,
                // seq) ascending. The destination heap would order them
                // anyway; sorting keeps the handoff sequence itself
                // deterministic and cheap to reason about.
                boxed.sort_unstable_by_key(|k| (k.time, k.seq));
                for k in boxed.drain(..) {
                    self.wheels[dst].push(k);
                }
            }
        }
        self.parked = 0;
    }

    /// Remove and return the earliest event — exact global `(time, seq)`
    /// order — advancing the watermark and the executing-domain context.
    /// Opens a new lookahead window (draining mailboxes) whenever the
    /// frontier reaches the current window's end.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let (wheel, key) = match self.min_head() {
            Some((w, k)) if k.time < self.window_end => (w, k),
            _ => {
                // Epoch boundary (or all wheels empty with parked
                // events): drain, then open a new window at the frontier.
                self.drain_mailboxes();
                let (w, k) = self.min_head().expect("len > 0 after drain");
                self.window_end = k.time + self.lookahead;
                (w, k)
            }
        };
        let popped = self.wheels[wheel].pop().expect("peeked head exists");
        debug_assert!(popped == key);
        self.len -= 1;
        self.watermark = key.time;
        self.current = wheel;
        Some((key.time, self.arena.take(key.idx)))
    }

    /// The timestamp of the earliest pending event, if any. Considers
    /// parked mailbox events too (they can never be earlier than the
    /// visible minimum while a window is open, but an all-wheels-empty
    /// queue with parked events is still non-empty).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.min_head().is_none() {
            self.drain_mailboxes();
        }
        self.min_head().map(|(_, k)| k.time)
    }

    /// Number of pending events, parked mailbox events included.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Peak number of simultaneously pending events.
    #[inline]
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Start classifying pushed events into a [`QueueProfile`]; same
    /// contract as [`EventQueue::enable_profiler`].
    ///
    /// [`EventQueue::enable_profiler`]: crate::events::EventQueue::enable_profiler
    pub fn enable_profiler(&mut self, names: &'static [&'static str], classify: fn(&E) -> usize) {
        assert!(!names.is_empty(), "profiler needs at least one class");
        self.profiler = Some((classify, QueueProfile::new(names)));
    }

    /// The accumulated profile, if profiling was enabled.
    pub fn profile(&self) -> Option<&QueueProfile> {
        self.profiler.as_ref().map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventQueue;

    /// Drive a ShardedQueue and a serial EventQueue with the same
    /// deterministic pseudo-random schedule (including cross-domain
    /// pushes honoring the lookahead contract) and assert identical pop
    /// traces.
    fn assert_matches_serial(domains: usize, lookahead_ns: u64, ops: u64, seed: u64) {
        let lookahead = SimDuration::from_nanos(lookahead_ns);
        let mut sharded: ShardedQueue<u64> = ShardedQueue::new(domains, lookahead);
        let mut serial: EventQueue<u64> = EventQueue::new();
        let mut x = seed | 1;
        let mut rng = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        let mut next_id = 0u64;
        let mut now_ns = 0u64;
        for _ in 0..ops {
            let r = rng();
            if r % 3 == 0 && !sharded.is_empty() {
                let a = sharded.pop();
                let b = serial.pop();
                assert_eq!(a, b, "pop divergence before event {next_id}");
                now_ns = a.unwrap().0.as_nanos();
            } else {
                let target = match r % 5 {
                    0 => ShardTarget::Global,
                    1 => ShardTarget::Current,
                    _ => ShardTarget::Domain((rng() as usize) % domains),
                };
                // In-window pushes stay local (Current/Global are always
                // legal); a Domain push may cross domains, so honor the
                // conservative contract by scheduling >= lookahead out.
                let delta = match target {
                    ShardTarget::Domain(_) => lookahead_ns + rng() % 10_000,
                    _ => rng() % 5_000,
                };
                let t = SimTime::from_nanos(now_ns + delta);
                sharded.push(t, target, next_id);
                serial.push(t, next_id);
                next_id += 1;
            }
            assert_eq!(sharded.len(), serial.len());
        }
        loop {
            let a = sharded.pop();
            let b = serial.pop();
            assert_eq!(a, b, "drain divergence");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn matches_serial_across_domain_counts() {
        for domains in [1, 2, 3, 8] {
            assert_matches_serial(domains, 500, 30_000, 0xD0_17 + domains as u64);
        }
    }

    #[test]
    fn matches_serial_with_zero_lookahead() {
        // Degenerate lookahead: every pop is an epoch. Still exact order.
        assert_matches_serial(4, 0, 10_000, 42);
    }

    #[test]
    fn cross_domain_handoffs_use_mailboxes() {
        let mut q: ShardedQueue<&'static str> = ShardedQueue::new(2, SimDuration::from_nanos(100));
        // Setup (global context): direct pushes.
        q.push(SimTime::from_nanos(10), ShardTarget::Domain(0), "a0");
        q.push(SimTime::from_nanos(20), ShardTarget::Domain(1), "b0");
        assert_eq!(q.stats().handoffs, 0);
        // Execute domain 0, then hand off to domain 1 beyond lookahead.
        assert_eq!(q.pop().unwrap().1, "a0");
        q.push(SimTime::from_nanos(150), ShardTarget::Domain(1), "b1");
        assert_eq!(q.stats().handoffs, 1, "a0 -> domain 1 goes via mailbox");
        // The parked event is still counted and still pops in order.
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "b0");
        assert_eq!(q.pop().unwrap().1, "b1");
        assert!(q.is_empty());
        assert!(q.stats().epochs >= 1);
    }

    #[test]
    #[should_panic(expected = "cross-domain handoff")]
    #[cfg(debug_assertions)]
    fn handoff_inside_window_panics() {
        let mut q: ShardedQueue<u8> = ShardedQueue::new(2, SimDuration::from_micros(10));
        q.push(SimTime::from_nanos(10), ShardTarget::Domain(0), 0);
        q.push(SimTime::from_micros(100), ShardTarget::Domain(1), 1);
        let _ = q.pop(); // window = [10ns, 10ns + 10us)
                         // A handoff due *inside* the window violates the lookahead.
        q.push(SimTime::from_nanos(20), ShardTarget::Domain(1), 2);
    }

    #[test]
    fn profiler_and_high_water_match_contract() {
        const NAMES: &[&str] = &["even", "odd"];
        let mut q: ShardedQueue<u64> = ShardedQueue::new(2, SimDuration::from_nanos(50));
        q.enable_profiler(NAMES, |e| (*e % 2) as usize);
        q.push(SimTime::from_nanos(100), ShardTarget::Domain(0), 0);
        q.push(SimTime::from_nanos(40), ShardTarget::Domain(1), 1);
        assert_eq!(q.high_water_mark(), 2);
        q.pop();
        let p = q.profile().expect("profiler enabled");
        assert_eq!(p.counts(), &[1, 1]);
        assert_eq!(p.dwell_ns(), &[100, 40]);
        assert_eq!(q.scheduled_total(), 2);
    }
}
