//! Simulated time.
//!
//! All simulation components share a single clock with nanosecond
//! resolution. [`SimTime`] is an instant, [`SimDuration`] a span; the usual
//! arithmetic between them is defined. A `u64` of nanoseconds covers ~584
//! simulated years, far beyond any experiment here.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since the start of the
/// simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "no deadline".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since the epoch as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed span since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition that saturates at [`SimTime::MAX`] instead of
    /// wrapping; useful when adding "infinite" timeouts.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span; used as a sentinel for "never".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Serialization delay of `bytes` on a link of `bits_per_sec`, rounded
    /// up to the next nanosecond so back-to-back packets never occupy the
    /// wire simultaneously.
    #[inline]
    pub fn transmission(bytes: u64, bits_per_sec: u64) -> Self {
        debug_assert!(bits_per_sec > 0, "link rate must be positive");
        let bits = bytes * 8;
        // ceil(bits * 1e9 / rate) without overflow for realistic inputs:
        // bytes < 2^40 and rates >= 1 Mbps keep the product within u128.
        let ns = ((bits as u128) * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(ns as u64)
    }

    /// Saturating multiplication by an integer factor.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }

    /// `self * f`, clamped to `[0, MAX]`; used for EWMA-scaled timeouts.
    #[inline]
    pub fn mul_f64(self, f: f64) -> Self {
        debug_assert!(f >= 0.0, "negative duration scale");
        let v = (self.0 as f64 * f).round();
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

fn format_ns(ns: u64) -> String {
    if ns == u64::MAX {
        "inf".to_string()
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_micros(5);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut u = t;
        u += d;
        assert_eq!(u, t + d);
    }

    #[test]
    fn transmission_delay_1500b_at_10g() {
        // 1500 bytes at 10 Gbps = 1.2 us exactly.
        let d = SimDuration::transmission(1500, 10_000_000_000);
        assert_eq!(d, SimDuration::from_nanos(1_200));
    }

    #[test]
    fn transmission_delay_rounds_up() {
        // 1 byte at 3 Gbps: 8/3 ns -> 3 ns.
        let d = SimDuration::transmission(1, 3_000_000_000);
        assert_eq!(d.as_nanos(), 3);
    }

    #[test]
    fn transmission_delay_64kb_at_100mbps() {
        // 65536 bytes at 100 Mbps ~ 5.24288 ms.
        let d = SimDuration::transmission(65_536, 100_000_000);
        assert_eq!(d.as_nanos(), 5_242_880);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
    }

    #[test]
    fn mul_f64_scales_and_clamps() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(2.0), SimDuration::from_micros(200));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(50));
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }
}
