//! CAFT: congestion- and fault-aware flowcell placement.
//!
//! Presto's weighted round-robin is *static* between controller updates:
//! it reacts to faults (via reweighted labels) but not to congestion.
//! CAFT (PAPERS.md, arXiv 2010.00720) closes that loop at the edge: the
//! policy consumes the periodic per-path signals delivered through
//! [`EdgePolicy::path_feedback`] — first-hop queue depth and the fault
//! subsystem's rate fraction per spanning tree — keeps a per-tree
//! congestion score (EWMA), and steers each *new* flowcell onto the
//! least-congested label, breaking ties round-robin so a quiet fabric
//! degenerates to Presto-style spraying. Faulted trees (rate 0) score
//! infinitely bad and are avoided entirely until the controller's
//! reweighted labels arrive, giving fault reaction at feedback cadence
//! rather than controller cadence.

use std::collections::HashMap;

use presto_endhost::{EdgePolicy, LabelTable, PathSignal, PathTag};
use presto_netsim::{FlowKey, HostId, Mac};
use presto_simcore::rng::hash_mix;
use presto_simcore::{SimDuration, SimTime};

/// EWMA weight of the newest congestion sample (α = 1/4).
const EWMA_INV_ALPHA: f64 = 4.0;
/// Hash salt for each flow's round-robin tie-break cursor.
const START_SALT: u64 = 0xCAF7;

#[derive(Debug)]
struct CaftFlowState {
    /// Bytes accumulated toward the current flowcell.
    cell_bytes: u64,
    /// Flowcell counter (the tag).
    cell_id: u64,
    /// Label index the current flowcell rides.
    path_idx: usize,
    /// Round-robin cursor for tie-breaks among equally scored labels.
    cursor: usize,
}

/// Congestion/fault-aware weighting over controller-installed labels.
#[derive(Debug)]
pub struct CaftPolicy {
    labels: LabelTable,
    flows: HashMap<FlowKey, CaftFlowState>,
    /// Congestion score per spanning tree id: EWMA of queue bytes scaled
    /// by path health. `f64::INFINITY` marks a dead tree.
    scores: HashMap<u32, f64>,
    /// Feedback sampling period requested from the harness.
    pub feedback_period: SimDuration,
    /// Flowcell size threshold (bytes), as in Algorithm 1.
    pub cell_bytes: u64,
    /// Flowcells created.
    pub flowcells: u64,
    /// Flowcells assigned per spanning tree, indexed by tree id.
    spray_counts: Vec<u64>,
    /// Feedback rounds folded in (observability).
    pub feedback_rounds: u64,
}

impl CaftPolicy {
    /// A policy sampling path feedback every `feedback_period`, cutting
    /// flowcells of `cell_bytes`.
    pub fn new(feedback_period: SimDuration, cell_bytes: u64) -> Self {
        assert!(cell_bytes > 0, "flowcell size must be positive");
        CaftPolicy {
            labels: LabelTable::new(),
            flows: HashMap::new(),
            scores: HashMap::new(),
            feedback_period,
            cell_bytes,
            flowcells: 0,
            spray_counts: Vec::new(),
            feedback_rounds: 0,
        }
    }

    /// The congestion score of `mac`'s tree (0 when never sampled).
    fn score(&self, mac: Mac) -> f64 {
        self.scores.get(&mac.tree()).copied().unwrap_or(0.0)
    }

    /// Pick the best label index: minimum score, ties broken by scanning
    /// round-robin from `cursor` — deterministic, and uniform when the
    /// fabric is quiet.
    fn pick(&self, labels: &[Mac], cursor: usize) -> usize {
        let n = labels.len();
        let mut best = cursor % n;
        let mut best_score = self.score(labels[best]);
        for off in 1..n {
            let idx = (cursor + off) % n;
            let s = self.score(labels[idx]);
            if s < best_score {
                best = idx;
                best_score = s;
            }
        }
        best
    }
}

impl EdgePolicy for CaftPolicy {
    fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        self.labels.set(dst, labels);
    }

    fn current_labels(&self, dst: HostId) -> Vec<Mac> {
        self.labels.current(dst)
    }

    fn flowcells_created(&self) -> u64 {
        self.flowcells
    }

    fn path_spray_counts(&self) -> Vec<u64> {
        self.spray_counts.clone()
    }

    fn feedback_interval(&self) -> Option<SimDuration> {
        Some(self.feedback_period)
    }

    fn path_feedback(&mut self, _now: SimTime, signals: &[PathSignal]) {
        self.feedback_rounds += 1;
        for sig in signals {
            // A dead path is infinitely congested; a degraded one has its
            // queue magnified by the lost headroom.
            let sample = if sig.rate_fraction <= 0.0 {
                f64::INFINITY
            } else {
                sig.queue_bytes as f64 / sig.rate_fraction
            };
            let slot = self.scores.entry(sig.tree).or_insert(sample);
            *slot = if slot.is_finite() && sample.is_finite() {
                (*slot * (EWMA_INV_ALPHA - 1.0) + sample) / EWMA_INV_ALPHA
            } else {
                // Entering or leaving the dead state snaps immediately:
                // averaging with infinity is meaningless.
                sample
            };
        }
    }

    fn labels_updated(&mut self, _now: SimTime) {
        // The controller just reweighted the label schedule (fault or
        // recovery). Positional per-flow state is stale: restart every
        // open flowcell's placement decision at its next boundary and
        // drop scores for trees the controller may have pruned — they
        // re-learn from the next feedback round.
        for state in self.flows.values_mut() {
            state.cursor = state.path_idx;
        }
        self.scores.clear();
    }

    fn assign(&mut self, _now: SimTime, flow: FlowKey, len: u32, _retx: bool) -> PathTag {
        let labels = match self.labels.get(flow.dst) {
            Some(l) => l.to_vec(),
            None => {
                return PathTag {
                    dst_mac: Mac::host(flow.dst),
                    flowcell: 0,
                }
            }
        };
        let n = labels.len();
        if !self.flows.contains_key(&flow) {
            let cursor = (hash_mix(flow.digest(), START_SALT) % n as u64) as usize;
            let path_idx = self.pick(&labels, cursor);
            self.flows.insert(
                flow,
                CaftFlowState {
                    cell_bytes: 0,
                    cell_id: 0,
                    path_idx,
                    cursor,
                },
            );
            self.flowcells += 1;
            let tree = labels[path_idx % n].tree() as usize;
            if self.spray_counts.len() <= tree {
                self.spray_counts.resize(tree + 1, 0);
            }
            self.spray_counts[tree] += 1;
        } else {
            let state = &self.flows[&flow];
            if state.cell_bytes >= self.cell_bytes {
                // Flowcell boundary: re-consult the congestion scores.
                let cursor = (state.cursor + 1) % n;
                let path_idx = self.pick(&labels, cursor);
                let state = self.flows.get_mut(&flow).unwrap();
                state.cursor = cursor;
                state.path_idx = path_idx;
                state.cell_bytes = 0;
                state.cell_id += 1;
                self.flowcells += 1;
                let tree = labels[path_idx % n].tree() as usize;
                if self.spray_counts.len() <= tree {
                    self.spray_counts.resize(tree + 1, 0);
                }
                self.spray_counts[tree] += 1;
            }
        }
        let state = self.flows.get_mut(&flow).unwrap();
        state.cell_bytes += len as u64;
        PathTag {
            dst_mac: labels[state.path_idx % n],
            flowcell: state.cell_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(sport: u16) -> FlowKey {
        FlowKey::new(HostId(0), HostId(9), sport, 80)
    }

    fn labels() -> Vec<Mac> {
        (0..4).map(|t| Mac::shadow(HostId(9), t)).collect()
    }

    fn policy() -> CaftPolicy {
        let mut p = CaftPolicy::new(SimDuration::from_micros(100), 64 * 1024);
        p.set_labels(HostId(9), labels());
        p
    }

    fn sig(tree: u32, queue: u64, rate: f64) -> PathSignal {
        PathSignal {
            tree,
            queue_bytes: queue,
            rate_fraction: rate,
        }
    }

    #[test]
    fn quiet_fabric_sprays_round_robin() {
        let mut p = policy();
        let macs: std::collections::HashSet<_> = (0..4 * 16)
            .map(|_| p.assign(SimTime::ZERO, flow(1), 64 * 1024, false).dst_mac)
            .collect();
        assert_eq!(macs.len(), 4, "no feedback → uniform spraying");
    }

    #[test]
    fn congested_path_is_avoided() {
        let mut p = policy();
        // Tree 2 is heavily queued; others idle.
        p.path_feedback(
            SimTime::ZERO,
            &[
                sig(0, 0, 1.0),
                sig(1, 0, 1.0),
                sig(2, 1_000_000, 1.0),
                sig(3, 0, 1.0),
            ],
        );
        let hot = Mac::shadow(HostId(9), 2);
        for _ in 0..32 {
            let tag = p.assign(SimTime::ZERO, flow(1), 64 * 1024, false);
            assert_ne!(tag.dst_mac, hot, "congested tree must be skipped");
        }
    }

    #[test]
    fn dead_path_is_excluded_immediately() {
        let mut p = policy();
        p.path_feedback(SimTime::ZERO, &[sig(1, 0, 0.0)]);
        let dead = Mac::shadow(HostId(9), 1);
        for s in 0..8 {
            for _ in 0..8 {
                assert_ne!(
                    p.assign(SimTime::ZERO, flow(s), 64 * 1024, false).dst_mac,
                    dead
                );
            }
        }
    }

    #[test]
    fn recovery_rejoins_after_labels_updated() {
        let mut p = policy();
        p.path_feedback(SimTime::ZERO, &[sig(1, 0, 0.0)]);
        // Controller reinstalls (recovery): scores reset, tree 1 usable.
        p.set_labels(HostId(9), labels());
        p.labels_updated(SimTime::ZERO);
        let macs: std::collections::HashSet<_> = (0..64)
            .map(|_| p.assign(SimTime::ZERO, flow(9), 64 * 1024, false).dst_mac)
            .collect();
        assert_eq!(macs.len(), 4, "recovered tree back in rotation");
    }

    #[test]
    fn ewma_smooths_transient_spikes() {
        let mut p = policy();
        // One round of spike on tree 0, then three idle rounds.
        p.path_feedback(SimTime::ZERO, &[sig(0, 800_000, 1.0)]);
        for _ in 0..3 {
            p.path_feedback(SimTime::ZERO, &[sig(0, 0, 1.0)]);
        }
        let residual = p.score(Mac::shadow(HostId(9), 0));
        assert!(residual > 0.0, "EWMA remembers the spike");
        assert!(residual < 800_000.0 / 2.0, "but it decays");
    }

    #[test]
    fn feedback_interval_is_advertised() {
        let p = policy();
        assert_eq!(
            EdgePolicy::feedback_interval(&p),
            Some(SimDuration::from_micros(100))
        );
        assert_eq!(
            EdgePolicy::feedback_interval(&crate::EcmpPolicy::new(0)),
            None
        );
    }

    #[test]
    fn flowcells_and_spray_counts_agree() {
        let mut p = policy();
        for _ in 0..40 {
            p.assign(SimTime::ZERO, flow(3), 64 * 1024, false);
        }
        let total: u64 = p.path_spray_counts().iter().sum();
        assert_eq!(total, p.flowcells_created());
        assert!(p.flowcells_created() >= 20);
    }

    #[test]
    fn fallback_without_labels() {
        let mut p = CaftPolicy::new(SimDuration::from_micros(100), 64 * 1024);
        let tag = p.assign(SimTime::ZERO, flow(1), 1460, false);
        assert_eq!(tag.dst_mac, Mac::host(HostId(9)));
    }
}
