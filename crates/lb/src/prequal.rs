//! Prequal-style receiver-load-aware flowcell spraying.
//!
//! Presto's weighted round-robin never looks past the first hop, and even
//! CAFT only sees its own uplink queues. Prequal (NSDI'24) adds the signal
//! both are missing: *receiver* load, gathered by asynchronous probes of
//! requests-in-flight and queue-drain latency, kept in a bounded
//! hot/cold pool (`presto-probe`) and consumed under the hot-cold
//! lexicographic rule — prefer probed-cold paths, then unprobed ones,
//! then the least-loaded hot path.
//!
//! The policy opts into two control-plane feeds:
//!
//! * [`EdgePolicy::probe_params`] — the simulator probes a rotating
//!   window of destinations every `every` and delivers [`HostLoad`]s via
//!   [`EdgePolicy::probe_feedback`]; entries land in the [`HclPool`]
//!   keyed by `(spanning tree, destination)`, with the tree's first-hop
//!   backlog folded into the recorded latency so congested trees rank
//!   behind clean ones toward the same host.
//! * [`EdgePolicy::feedback_interval`] — the same per-tree EWMA feed CAFT
//!   uses, which both seeds the latency penalty above and excludes dead
//!   trees outright.
//!
//! It also implements [`EdgePolicy::select_replicas`]: a partition-
//! aggregate aggregator running this policy picks the coldest `k`
//! responders instead of a static worker set — the Prequal experiment the
//! 2015 paper could not run.

use std::collections::HashMap;

use presto_endhost::{EdgePolicy, LabelTable, PathSignal, PathTag};
use presto_netsim::{FlowKey, HostId, Mac};
use presto_probe::{HclPool, HostLoad, PoolClass, PoolStats, ProbeParams, DIRECT_TREE};
use presto_simcore::rng::hash_mix;
use presto_simcore::{SimDuration, SimTime};

/// EWMA weight of the newest congestion sample (α = 1/4), as in CAFT.
const EWMA_INV_ALPHA: f64 = 4.0;
/// Hash salt for each flow's round-robin tie-break cursor.
const START_SALT: u64 = 0x9E0B;

#[derive(Debug)]
struct PrequalFlowState {
    /// Bytes accumulated toward the current flowcell.
    cell_bytes: u64,
    /// Flowcell counter (the tag).
    cell_id: u64,
    /// Label index the current flowcell rides.
    path_idx: usize,
    /// Round-robin cursor for tie-breaks among equally ranked labels.
    cursor: usize,
}

/// Receiver-load-aware weighting over controller-installed labels.
#[derive(Debug)]
pub struct PrequalPolicy {
    labels: LabelTable,
    flows: HashMap<FlowKey, PrequalFlowState>,
    /// First-hop congestion score per spanning tree id (EWMA of queue
    /// bytes scaled by path health); `f64::INFINITY` marks a dead tree.
    scores: HashMap<u32, f64>,
    /// The bounded hot/cold pool of probed `(tree, destination)` entries.
    pool: HclPool,
    /// Probe cadence / pool sizing advertised to the harness.
    pub params: ProbeParams,
    /// Flowcell size threshold (bytes), as in Algorithm 1.
    pub cell_bytes: u64,
    /// Flowcells created.
    pub flowcells: u64,
    /// Flowcells assigned per spanning tree, indexed by tree id.
    spray_counts: Vec<u64>,
    /// Path-feedback rounds folded in (observability).
    pub feedback_rounds: u64,
    /// Probe rounds folded in (observability).
    pub probe_rounds: u64,
}

impl PrequalPolicy {
    /// A policy probing on `params`' cadence, cutting flowcells of
    /// `cell_bytes`.
    pub fn new(params: ProbeParams, cell_bytes: u64) -> Self {
        assert!(cell_bytes > 0, "flowcell size must be positive");
        PrequalPolicy {
            labels: LabelTable::new(),
            flows: HashMap::new(),
            scores: HashMap::new(),
            pool: HclPool::from_params(params),
            params,
            cell_bytes,
            flowcells: 0,
            spray_counts: Vec::new(),
            feedback_rounds: 0,
            probe_rounds: 0,
        }
    }

    /// The congestion score of tree `tree` (0 when never sampled).
    fn score(&self, tree: u32) -> f64 {
        self.scores.get(&tree).copied().unwrap_or(0.0)
    }

    /// HCL rank of one label toward `dst`: `(band, in-band metric, tree
    /// score)`, lower is better. Dead trees rank behind everything.
    fn rank(&self, mac: Mac, dst: HostId) -> (u8, u64, u64) {
        let score = self.score(mac.tree());
        if score.is_infinite() {
            return (3, u64::MAX, u64::MAX);
        }
        let class = self.pool.classify(mac.tree(), dst);
        (class.band(), class.metric(), score as u64)
    }

    /// Pick the best label index: minimum HCL rank, ties broken by
    /// scanning round-robin from `cursor` — deterministic, and uniform
    /// when nothing has been probed yet.
    fn pick(&self, labels: &[Mac], dst: HostId, cursor: usize) -> usize {
        let n = labels.len();
        let mut best = cursor % n;
        let mut best_rank = self.rank(labels[best], dst);
        for off in 1..n {
            let idx = (cursor + off) % n;
            let r = self.rank(labels[idx], dst);
            if r < best_rank {
                best = idx;
                best_rank = r;
            }
        }
        best
    }

    fn count_spray(&mut self, mac: Mac) {
        let tree = mac.tree() as usize;
        if self.spray_counts.len() <= tree {
            self.spray_counts.resize(tree + 1, 0);
        }
        self.spray_counts[tree] += 1;
    }
}

impl EdgePolicy for PrequalPolicy {
    fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        self.labels.set(dst, labels);
    }

    fn current_labels(&self, dst: HostId) -> Vec<Mac> {
        self.labels.current(dst)
    }

    fn flowcells_created(&self) -> u64 {
        self.flowcells
    }

    fn path_spray_counts(&self) -> Vec<u64> {
        self.spray_counts.clone()
    }

    fn feedback_interval(&self) -> Option<SimDuration> {
        Some(self.params.every)
    }

    fn probe_params(&self) -> Option<ProbeParams> {
        Some(self.params)
    }

    fn probe_pool_stats(&self) -> Option<PoolStats> {
        Some(self.pool.stats())
    }

    fn path_feedback(&mut self, _now: SimTime, signals: &[PathSignal]) {
        self.feedback_rounds += 1;
        for sig in signals {
            let sample = if sig.rate_fraction <= 0.0 {
                f64::INFINITY
            } else {
                sig.queue_bytes as f64 / sig.rate_fraction
            };
            let slot = self.scores.entry(sig.tree).or_insert(sample);
            *slot = if slot.is_finite() && sample.is_finite() {
                (*slot * (EWMA_INV_ALPHA - 1.0) + sample) / EWMA_INV_ALPHA
            } else {
                // Entering or leaving the dead state snaps immediately.
                sample
            };
        }
    }

    fn probe_feedback(&mut self, now: SimTime, loads: &[HostLoad]) {
        self.probe_rounds += 1;
        for load in loads {
            // One pool entry per (tree, destination) pair. The receiver's
            // drain latency is tree-independent, so each tree's entry
            // carries it plus that tree's first-hop backlog — congested
            // trees toward the same host rank behind clean ones.
            let trees = match self.labels.get(load.host) {
                Some(labels) => {
                    let mut ts: Vec<u32> = labels.iter().map(|m| m.tree()).collect();
                    ts.sort_unstable();
                    ts.dedup();
                    ts
                }
                None => vec![DIRECT_TREE],
            };
            for tree in trees {
                let score = if tree == DIRECT_TREE {
                    0.0
                } else {
                    self.score(tree)
                };
                if score.is_infinite() {
                    continue; // dead tree: rank() already excludes it
                }
                let latency = load.latency_ns.saturating_add(score as u64);
                self.pool.record(now, tree, load.host, load.rif, latency);
            }
        }
        self.pool.note_round(now);
    }

    fn select_replicas(
        &mut self,
        now: SimTime,
        candidates: &[HostId],
        k: usize,
    ) -> Option<Vec<HostId>> {
        self.pool.evict_stale(now);
        if self.pool.is_empty() {
            // Nothing probed yet (or everything stale): keep the static
            // choice so behaviour degrades to plain Presto, not to noise.
            return None;
        }
        // Rank hosts by their best class; unprobed hosts keep their
        // candidate order (their "metric" is the index), so with a partial
        // pool the static prefix still wins among unknowns.
        let mut ranked: Vec<(u8, u64, usize)> = candidates
            .iter()
            .enumerate()
            .map(|(i, &h)| match self.pool.classify_host(h) {
                PoolClass::Unknown => (1, i as u64, i),
                c => (c.band(), c.metric(), i),
            })
            .collect();
        ranked.sort_unstable();
        Some(
            ranked
                .into_iter()
                .take(k)
                .map(|(_, _, i)| candidates[i])
                .collect(),
        )
    }

    fn labels_updated(&mut self, _now: SimTime) {
        // Controller reweight: positional per-flow state is stale and
        // pruned trees must re-learn. Pool entries describe hosts, which
        // the reweight does not invalidate, so they survive.
        for state in self.flows.values_mut() {
            state.cursor = state.path_idx;
        }
        self.scores.clear();
    }

    fn assign(&mut self, now: SimTime, flow: FlowKey, len: u32, _retx: bool) -> PathTag {
        let labels = match self.labels.get(flow.dst) {
            Some(l) => l.to_vec(),
            None => {
                return PathTag {
                    dst_mac: Mac::host(flow.dst),
                    flowcell: 0,
                }
            }
        };
        let n = labels.len();
        if !self.flows.contains_key(&flow) {
            self.pool.evict_stale(now);
            let cursor = (hash_mix(flow.digest(), START_SALT) % n as u64) as usize;
            let path_idx = self.pick(&labels, flow.dst, cursor);
            self.flows.insert(
                flow,
                PrequalFlowState {
                    cell_bytes: 0,
                    cell_id: 0,
                    path_idx,
                    cursor,
                },
            );
            self.flowcells += 1;
            self.count_spray(labels[path_idx % n]);
        } else {
            let state = &self.flows[&flow];
            if state.cell_bytes >= self.cell_bytes {
                // Flowcell boundary: re-consult the pool and tree scores.
                self.pool.evict_stale(now);
                let cursor = (state.cursor + 1) % n;
                let path_idx = self.pick(&labels, flow.dst, cursor);
                let state = self.flows.get_mut(&flow).unwrap();
                state.cursor = cursor;
                state.path_idx = path_idx;
                state.cell_bytes = 0;
                state.cell_id += 1;
                self.flowcells += 1;
                self.count_spray(labels[path_idx % n]);
            }
        }
        let state = self.flows.get_mut(&flow).unwrap();
        state.cell_bytes += len as u64;
        PathTag {
            dst_mac: labels[state.path_idx % n],
            flowcell: state.cell_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(sport: u16) -> FlowKey {
        FlowKey::new(HostId(0), HostId(9), sport, 80)
    }

    fn labels() -> Vec<Mac> {
        (0..4).map(|t| Mac::shadow(HostId(9), t)).collect()
    }

    fn policy() -> PrequalPolicy {
        let mut p = PrequalPolicy::new(ProbeParams::default(), 64 * 1024);
        p.set_labels(HostId(9), labels());
        p
    }

    fn load(host: u32, rif: u64, latency_ns: u64) -> HostLoad {
        HostLoad {
            host: HostId(host),
            rif,
            bytes_in_flight: 0,
            queue_bytes: 0,
            latency_ns,
        }
    }

    fn sig(tree: u32, queue: u64, rate: f64) -> PathSignal {
        PathSignal {
            tree,
            queue_bytes: queue,
            rate_fraction: rate,
        }
    }

    #[test]
    fn unprobed_fabric_sprays_round_robin() {
        let mut p = policy();
        let macs: std::collections::HashSet<_> = (0..4 * 16)
            .map(|_| p.assign(SimTime::ZERO, flow(1), 64 * 1024, false).dst_mac)
            .collect();
        assert_eq!(macs.len(), 4, "no probes → uniform spraying");
    }

    #[test]
    fn congested_tree_ranks_behind_clean_ones() {
        let mut p = policy();
        // Tree 2's first-hop uplink is backed up; probes then stamp that
        // backlog into tree 2's pool entries toward host 9.
        p.path_feedback(
            SimTime::ZERO,
            &[
                sig(0, 0, 1.0),
                sig(1, 0, 1.0),
                sig(2, 1_000_000, 1.0),
                sig(3, 0, 1.0),
            ],
        );
        p.probe_feedback(SimTime::ZERO, &[load(9, 0, 100)]);
        let hot = Mac::shadow(HostId(9), 2);
        for _ in 0..32 {
            let tag = p.assign(SimTime::ZERO, flow(1), 64 * 1024, false);
            assert_ne!(tag.dst_mac, hot, "congested tree must be skipped");
        }
    }

    #[test]
    fn dead_tree_is_excluded_immediately() {
        let mut p = policy();
        p.path_feedback(SimTime::ZERO, &[sig(1, 0, 0.0)]);
        let dead = Mac::shadow(HostId(9), 1);
        for s in 0..8 {
            for _ in 0..8 {
                assert_ne!(
                    p.assign(SimTime::ZERO, flow(s), 64 * 1024, false).dst_mac,
                    dead
                );
            }
        }
    }

    #[test]
    fn select_replicas_is_static_until_probed() {
        let mut p = policy();
        let cands: Vec<HostId> = (1..=8).map(HostId).collect();
        assert_eq!(p.select_replicas(SimTime::ZERO, &cands, 4), None);
    }

    #[test]
    fn select_replicas_prefers_cold_hosts() {
        let mut p = policy();
        // Hosts 1 and 2 are drowning; 7 and 8 are idle. 3-6 unprobed.
        p.probe_feedback(
            SimTime::ZERO,
            &[
                load(1, 40, 900_000),
                load(2, 35, 800_000),
                load(7, 0, 10),
                load(8, 0, 20),
            ],
        );
        let cands: Vec<HostId> = (1..=8).map(HostId).collect();
        let picked = p.select_replicas(SimTime::ZERO, &cands, 4).unwrap();
        // Pool RIFs are [40, 35, 0, 0]: the median is 35, so host 1 is
        // hot (40 > 35) and host 2 sits *at* the threshold — cold, but
        // ranked last among cold by its huge latency. Probed entries
        // outrank unprobed ones, so host 2 still beats unknown host 3.
        assert_eq!(
            picked,
            vec![HostId(7), HostId(8), HostId(2), HostId(3)],
            "cold by latency, then unprobed in candidate order, hot last"
        );
    }

    #[test]
    fn stale_pool_reverts_to_static_selection() {
        let mut p = policy();
        p.probe_feedback(SimTime::ZERO, &[load(1, 40, 900_000)]);
        let cands: Vec<HostId> = (1..=8).map(HostId).collect();
        assert!(p.select_replicas(SimTime::ZERO, &cands, 4).is_some());
        // Default staleness is 1 ms; 2 ms later everything has expired.
        let later = SimTime::from_millis(2);
        assert_eq!(p.select_replicas(later, &cands, 4), None);
    }

    #[test]
    fn probe_and_feedback_cadences_are_advertised() {
        let p = policy();
        let params = EdgePolicy::probe_params(&p).unwrap();
        assert_eq!(params, ProbeParams::default());
        assert_eq!(
            EdgePolicy::feedback_interval(&p),
            Some(ProbeParams::default().every)
        );
        assert_eq!(EdgePolicy::probe_params(&crate::EcmpPolicy::new(0)), None);
    }

    #[test]
    fn pool_stats_are_exposed() {
        let mut p = policy();
        assert_eq!(p.probe_pool_stats(), Some(PoolStats::default()));
        p.probe_feedback(SimTime::ZERO, &[load(9, 0, 10)]);
        let stats = p.probe_pool_stats().unwrap();
        assert_eq!(stats.rounds, 1);
        // One load fanned out over the 4 label trees toward host 9.
        assert_eq!(stats.samples, 4);
    }

    #[test]
    fn flowcells_and_spray_counts_agree() {
        let mut p = policy();
        for _ in 0..40 {
            p.assign(SimTime::ZERO, flow(3), 64 * 1024, false);
        }
        let total: u64 = p.path_spray_counts().iter().sum();
        assert_eq!(total, p.flowcells_created());
        assert!(p.flowcells_created() >= 20);
    }

    #[test]
    fn fallback_without_labels() {
        let mut p = PrequalPolicy::new(ProbeParams::default(), 64 * 1024);
        let tag = p.assign(SimTime::ZERO, flow(1), 1460, false);
        assert_eq!(tag.dst_mac, Mac::host(HostId(9)));
        // Probes toward label-less hosts land under the direct pseudo-tree.
        p.probe_feedback(SimTime::ZERO, &[load(9, 3, 50)]);
        assert_eq!(p.probe_pool_stats().unwrap().samples, 1);
    }

    #[test]
    fn recovery_rejoins_after_labels_updated() {
        let mut p = policy();
        p.path_feedback(SimTime::ZERO, &[sig(1, 0, 0.0)]);
        p.set_labels(HostId(9), labels());
        p.labels_updated(SimTime::ZERO);
        let macs: std::collections::HashSet<_> = (0..64)
            .map(|_| p.assign(SimTime::ZERO, flow(9), 64 * 1024, false).dst_mac)
            .collect();
        assert_eq!(macs.len(), 4, "recovered tree back in rotation");
    }
}
