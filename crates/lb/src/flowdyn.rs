//! FlowDyn: flowlet switching with a *dynamic* gap threshold.
//!
//! Fixed flowlet timers face an impossible trade-off (§2.1, Fig 13): a
//! small timer (100 µs) chops bursts into reordering-prone fragments,
//! while a large one (500 µs) barely ever switches paths. FlowDyn
//! (PAPERS.md, arXiv 1910.03324) sidesteps the fixed choice by learning
//! each flow's burst cadence: the switching threshold tracks a multiple
//! of the flow's observed inter-arrival EWMA, clamped to a sane range.
//! Dense flows earn a tight threshold (they can afford to switch at
//! every real pause); sparse flows get a loose one (their natural gaps
//! should not trigger path churn).

use std::collections::HashMap;

use presto_endhost::{EdgePolicy, LabelTable, PathTag};
use presto_netsim::{FlowKey, HostId, Mac};
use presto_simcore::rng::hash_mix;
use presto_simcore::{SimDuration, SimTime};

/// Threshold multiple over the inter-arrival EWMA: a gap has to exceed
/// `BETA ×` the typical spacing before it counts as a flowlet boundary.
const BETA: u64 = 4;
/// EWMA weight of the newest sample, as a reciprocal (α = 1/8).
const EWMA_INV_ALPHA: u64 = 8;
/// Hash salt for each flow's starting path.
const START_SALT: u64 = 0xD117;

#[derive(Debug)]
struct FlowDynState {
    last_seen: SimTime,
    /// EWMA of inter-arrival gaps in nanoseconds; 0 until the second
    /// arrival seeds it.
    ewma_gap_ns: u64,
    path_idx: usize,
    flowlet_id: u64,
    bytes_in_flowlet: u64,
}

/// Flowlet switching whose inactivity threshold adapts per flow.
#[derive(Debug)]
pub struct FlowDynPolicy {
    labels: LabelTable,
    flows: HashMap<FlowKey, FlowDynState>,
    /// Floor for the adaptive threshold (also the cold-start threshold
    /// before a flow has any gap history).
    pub min_gap: SimDuration,
    /// Ceiling for the adaptive threshold.
    pub max_gap: SimDuration,
    /// Completed flowlet sizes in bytes, for the Fig 1-style analysis.
    pub flowlet_sizes: Vec<u64>,
}

impl FlowDynPolicy {
    /// A policy clamping its adaptive threshold to `[min_gap, 5×min_gap]`.
    pub fn new(min_gap: SimDuration) -> Self {
        FlowDynPolicy {
            labels: LabelTable::new(),
            flows: HashMap::new(),
            min_gap,
            max_gap: min_gap.saturating_mul(5),
            flowlet_sizes: Vec::new(),
        }
    }

    /// The switching threshold implied by an inter-arrival EWMA of
    /// `ewma_gap_ns`: `BETA ×` the EWMA, clamped to `[min_gap, max_gap]`.
    pub fn threshold(&self, ewma_gap_ns: u64) -> SimDuration {
        if ewma_gap_ns == 0 {
            // No history yet: behave like a fixed-gap flowlet policy.
            return self.min_gap;
        }
        let dynamic = SimDuration::from_nanos(ewma_gap_ns.saturating_mul(BETA));
        dynamic.clamp(self.min_gap, self.max_gap)
    }

    /// Flowlet sizes including the still-open trailing flowlets. Open
    /// flowlets are appended in flow-key order — `flows` is a hash map,
    /// and its iteration order must never leak into the report digest.
    pub fn all_flowlet_sizes(&self) -> Vec<u64> {
        let mut out = self.flowlet_sizes.clone();
        let mut open: Vec<(u32, u32, u16, u16, u64)> = self
            .flows
            .iter()
            .filter(|(_, s)| s.bytes_in_flowlet > 0)
            .map(|(k, s)| (k.src.0, k.dst.0, k.sport, k.dport, s.bytes_in_flowlet))
            .collect();
        open.sort_unstable();
        out.extend(open.into_iter().map(|(.., bytes)| bytes));
        out
    }
}

impl EdgePolicy for FlowDynPolicy {
    fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        self.labels.set(dst, labels);
    }

    fn current_labels(&self, dst: HostId) -> Vec<Mac> {
        self.labels.current(dst)
    }

    fn flowlet_sizes(&self) -> Vec<u64> {
        self.all_flowlet_sizes()
    }

    fn assign(&mut self, now: SimTime, flow: FlowKey, len: u32, _retx: bool) -> PathTag {
        let labels = match self.labels.get(flow.dst) {
            Some(l) => l,
            None => {
                return PathTag {
                    dst_mac: Mac::host(flow.dst),
                    flowcell: 0,
                }
            }
        };
        let n = labels.len();
        let Some(state) = self.flows.get_mut(&flow) else {
            self.flows.insert(
                flow,
                FlowDynState {
                    last_seen: now,
                    ewma_gap_ns: 0,
                    path_idx: (hash_mix(flow.digest(), START_SALT) % n as u64) as usize,
                    flowlet_id: 1,
                    bytes_in_flowlet: len as u64,
                },
            );
            let state = &self.flows[&flow];
            return PathTag {
                dst_mac: labels[state.path_idx % n],
                flowcell: state.flowlet_id,
            };
        };
        let gap = now.saturating_since(state.last_seen);
        let ewma = state.ewma_gap_ns;
        let threshold = if ewma == 0 {
            self.min_gap
        } else {
            SimDuration::from_nanos(ewma.saturating_mul(BETA)).clamp(self.min_gap, self.max_gap)
        };
        if gap > threshold && state.bytes_in_flowlet > 0 {
            // A genuine pause for *this* flow: close the flowlet and
            // rotate the path.
            self.flowlet_sizes.push(state.bytes_in_flowlet);
            state.bytes_in_flowlet = 0;
            state.path_idx = (state.path_idx + 1) % n;
            state.flowlet_id += 1;
        }
        // Fold every observed gap into the cadence estimate — including
        // boundary gaps, so a sparse flow learns its natural spacing and
        // stops splitting on it. The `max_gap` clamp keeps one long pause
        // from inflating the threshold without bound.
        state.ewma_gap_ns = if ewma == 0 {
            gap.as_nanos()
        } else {
            (ewma * (EWMA_INV_ALPHA - 1) + gap.as_nanos()) / EWMA_INV_ALPHA
        };
        state.last_seen = now;
        state.bytes_in_flowlet += len as u64;
        PathTag {
            dst_mac: labels[state.path_idx % n],
            flowcell: state.flowlet_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowKey {
        FlowKey::new(HostId(0), HostId(9), 5, 80)
    }

    fn policy(min_gap_us: u64) -> FlowDynPolicy {
        let mut p = FlowDynPolicy::new(SimDuration::from_micros(min_gap_us));
        p.set_labels(
            HostId(9),
            (0..4).map(|t| Mac::shadow(HostId(9), t)).collect(),
        );
        p
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn cold_start_uses_min_gap() {
        let mut p = policy(100);
        let a = p.assign(t(0), flow(), 1460, false);
        // Second arrival after 90us < 100us min gap: same flowlet.
        let b = p.assign(t(90), flow(), 1460, false);
        assert_eq!(a.dst_mac, b.dst_mac);
        assert_eq!(a.flowcell, b.flowcell);
    }

    #[test]
    fn dense_flow_learns_tight_threshold() {
        // 10us cadence → EWMA ≈ 10us → threshold = max(4×10us, 100us)
        // = 100us (the floor). A 150us pause then switches.
        let mut p = policy(100);
        let mut now = 0;
        for _ in 0..50 {
            p.assign(t(now), flow(), 1460, false);
            now += 10;
        }
        let before = p.assign(t(now), flow(), 1460, false);
        let after = p.assign(t(now + 150), flow(), 1460, false);
        assert_ne!(before.flowcell, after.flowcell, "pause opened a flowlet");
        assert_ne!(before.dst_mac, after.dst_mac, "path rotated");
    }

    #[test]
    fn sparse_flow_tolerates_its_natural_gaps() {
        // 150us cadence with a 100us min gap: a fixed-gap policy would
        // switch on every arrival, FlowDyn learns threshold = 4×150us
        // (clamped to 500us max) and keeps the flowlet open.
        let mut p = policy(100);
        let mut tags = Vec::new();
        for i in 0..20 {
            tags.push(p.assign(t(i * 150), flow(), 1460, false));
        }
        // The first gap (before any EWMA) may still split; after that the
        // learned threshold holds the path steady.
        let settled: std::collections::HashSet<_> =
            tags[2..].iter().map(|tag| tag.flowcell).collect();
        assert_eq!(settled.len(), 1, "learned threshold stops path churn");
    }

    #[test]
    fn fixed_gap_beats_flowdyn_on_churn() {
        // The headline property: same sparse arrivals, FlowDyn makes
        // fewer flowlets than a fixed min-gap policy would.
        let arrivals: Vec<u64> = (0..30).map(|i| i * 150).collect();
        let mut dyn_p = policy(100);
        for &at in &arrivals {
            dyn_p.assign(t(at), flow(), 1460, false);
        }
        let mut fixed = crate::FlowletPolicy::new(SimDuration::from_micros(100));
        fixed.set_labels(
            HostId(9),
            (0..4).map(|tr| Mac::shadow(HostId(9), tr)).collect(),
        );
        for &at in &arrivals {
            fixed.assign(t(at), flow(), 1460, false);
        }
        assert!(
            dyn_p.all_flowlet_sizes().len() < fixed.all_flowlet_sizes().len(),
            "dynamic threshold should out-coalesce the fixed timer"
        );
    }

    #[test]
    fn threshold_clamps_to_range() {
        let p = policy(100);
        assert_eq!(p.threshold(0), SimDuration::from_micros(100));
        assert_eq!(p.threshold(1_000), SimDuration::from_micros(100)); // 4us → floor
        assert_eq!(p.threshold(50_000), SimDuration::from_micros(200)); // 4×50us
        assert_eq!(p.threshold(1_000_000), SimDuration::from_micros(500)); // ceiling
    }

    #[test]
    fn fallback_without_labels() {
        let mut p = FlowDynPolicy::new(SimDuration::from_micros(100));
        let tag = p.assign(t(0), flow(), 1460, false);
        assert_eq!(tag.dst_mac, Mac::host(HostId(9)));
    }
}
