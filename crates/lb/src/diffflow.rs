//! DiffFlow: spray the mice, pin the elephants.
//!
//! Presto sprays *every* flow; per-flow ECMP pins every flow. DiffFlow
//! (PAPERS.md, arXiv 1604.05107) differentiates: short flows — the
//! latency-sensitive majority — are sprayed across all paths for instant
//! load balancing, while a flow that crosses a byte threshold is an
//! elephant and gets pinned to a single hashed path so its (large)
//! remaining bytes stop churning headers and GRO can merge at full
//! efficiency. The scheme consumes the [`EdgePolicy::flow_hint`] API:
//! when the application announces a flow's size up front, a known
//! elephant is pinned from its very first segment.

use std::collections::{HashMap, HashSet};

use presto_endhost::{EdgePolicy, LabelTable, PathTag};
use presto_netsim::{FlowKey, HostId, Mac};
use presto_simcore::rng::hash_mix;
use presto_simcore::SimTime;

/// Hash salt for an elephant's pinned path.
const PIN_SALT: u64 = 0xD1FF;
/// Hash salt for a mouse's spray-start offset.
const SPRAY_SALT: u64 = 0x5B0A;

#[derive(Debug)]
struct DiffFlowState {
    bytes_sent: u64,
    /// Spray rotation counter while the flow is still a mouse.
    counter: u64,
    /// Set once the flow is classified as an elephant.
    pinned: Option<usize>,
}

/// Size-differentiated spraying: rotate paths per skb below the elephant
/// threshold, pin to one hashed path above it.
#[derive(Debug)]
pub struct DiffFlowPolicy {
    labels: LabelTable,
    flows: HashMap<FlowKey, DiffFlowState>,
    /// Flows the application pre-announced as elephants via `flow_hint`.
    hinted_elephants: HashSet<FlowKey>,
    /// Bytes after which a flow is an elephant and gets pinned.
    pub elephant_bytes: u64,
    /// Skbs sprayed per spanning tree (mouse traffic), indexed by tree id.
    spray_counts: Vec<u64>,
}

impl DiffFlowPolicy {
    /// A policy pinning flows once they exceed `elephant_bytes`.
    pub fn new(elephant_bytes: u64) -> Self {
        DiffFlowPolicy {
            labels: LabelTable::new(),
            flows: HashMap::new(),
            hinted_elephants: HashSet::new(),
            elephant_bytes,
            spray_counts: Vec::new(),
        }
    }

    fn bump_spray(&mut self, mac: Mac) {
        let tree = mac.tree() as usize;
        if self.spray_counts.len() <= tree {
            self.spray_counts.resize(tree + 1, 0);
        }
        self.spray_counts[tree] += 1;
    }
}

impl EdgePolicy for DiffFlowPolicy {
    fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        self.labels.set(dst, labels);
    }

    fn current_labels(&self, dst: HostId) -> Vec<Mac> {
        self.labels.current(dst)
    }

    fn flow_hint(&mut self, flow: FlowKey, bytes: Option<u64>) {
        match bytes {
            Some(b) if b >= self.elephant_bytes => {
                self.hinted_elephants.insert(flow);
            }
            _ => {}
        }
    }

    fn path_spray_counts(&self) -> Vec<u64> {
        self.spray_counts.clone()
    }

    fn assign(&mut self, _now: SimTime, flow: FlowKey, len: u32, _retx: bool) -> PathTag {
        let labels = match self.labels.get(flow.dst) {
            Some(l) => l.to_vec(),
            None => {
                return PathTag {
                    dst_mac: Mac::host(flow.dst),
                    flowcell: 0,
                }
            }
        };
        let n = labels.len() as u64;
        let hinted = self.hinted_elephants.contains(&flow);
        let elephant_bytes = self.elephant_bytes;
        let state = self.flows.entry(flow).or_insert_with(|| DiffFlowState {
            bytes_sent: 0,
            counter: hash_mix(flow.digest(), SPRAY_SALT) % n,
            pinned: None,
        });
        if state.pinned.is_none() && (hinted || state.bytes_sent >= elephant_bytes) {
            state.pinned = Some((hash_mix(flow.digest(), PIN_SALT) % n) as usize);
        }
        state.bytes_sent += len as u64;
        match state.pinned {
            Some(idx) => PathTag {
                dst_mac: labels[idx % n as usize],
                // One stable "cell" for the whole pinned phase: headers
                // stop changing, GRO merges freely.
                flowcell: u64::MAX,
            },
            None => {
                state.counter += 1;
                let counter = state.counter;
                let mac = labels[(counter % n) as usize];
                self.bump_spray(mac);
                PathTag {
                    dst_mac: mac,
                    // Every sprayed skb is its own cell, like per-packet.
                    flowcell: counter,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowKey {
        FlowKey::new(HostId(0), HostId(9), 5, 80)
    }

    fn policy(threshold: u64) -> DiffFlowPolicy {
        let mut p = DiffFlowPolicy::new(threshold);
        p.set_labels(
            HostId(9),
            (0..4).map(|t| Mac::shadow(HostId(9), t)).collect(),
        );
        p
    }

    #[test]
    fn mice_spray_across_all_paths() {
        let mut p = policy(1_000_000);
        let macs: std::collections::HashSet<_> = (0..8)
            .map(|_| p.assign(SimTime::ZERO, flow(), 1460, false).dst_mac)
            .collect();
        assert_eq!(macs.len(), 4, "mouse traffic uses every path");
    }

    #[test]
    fn elephants_pin_after_threshold() {
        let mut p = policy(100_000);
        // Push past the threshold in 64KB skbs.
        for _ in 0..3 {
            p.assign(SimTime::ZERO, flow(), 64 * 1024, false);
        }
        let pinned = p.assign(SimTime::ZERO, flow(), 64 * 1024, false);
        for _ in 0..10 {
            let tag = p.assign(SimTime::ZERO, flow(), 64 * 1024, false);
            assert_eq!(tag.dst_mac, pinned.dst_mac, "elephant stays pinned");
            assert_eq!(tag.flowcell, pinned.flowcell, "headers stop churning");
        }
    }

    #[test]
    fn hint_pins_from_first_segment() {
        let mut p = policy(100_000);
        p.flow_hint(flow(), Some(10_000_000));
        let first = p.assign(SimTime::ZERO, flow(), 1460, false);
        let second = p.assign(SimTime::ZERO, flow(), 1460, false);
        assert_eq!(
            first.dst_mac, second.dst_mac,
            "hinted elephant never sprays"
        );
        assert_eq!(first.flowcell, u64::MAX);
    }

    #[test]
    fn small_hint_does_not_pin() {
        let mut p = policy(100_000);
        p.flow_hint(flow(), Some(5_000));
        let macs: std::collections::HashSet<_> = (0..8)
            .map(|_| p.assign(SimTime::ZERO, flow(), 500, false).dst_mac)
            .collect();
        assert_eq!(macs.len(), 4, "a hinted mouse still sprays");
    }

    #[test]
    fn spray_counts_only_cover_mouse_phase() {
        let mut p = policy(4 * 1460);
        for _ in 0..20 {
            p.assign(SimTime::ZERO, flow(), 1460, false);
        }
        let sprayed: u64 = p.path_spray_counts().iter().sum();
        assert_eq!(sprayed, 4, "only pre-pin skbs count as sprayed");
    }

    #[test]
    fn fallback_without_labels() {
        let mut p = DiffFlowPolicy::new(1000);
        let tag = p.assign(SimTime::ZERO, flow(), 1460, false);
        assert_eq!(tag.dst_mac, Mac::host(HostId(9)));
    }
}
