//! Per-packet (per-skb) spraying.
//!
//! RPS and DRB spray individual packets over all paths. §2.1 of the paper
//! argues such schemes cannot scale to 10+ Gbps at the host because they
//! forgo TSO; §2.2 adds that they flood the receiver with reordering. To
//! reproduce those experiments the testbed pairs this policy with a
//! reduced `max_tso` (MSS-sized skbs), so every packet really does take
//! its own path.

use std::collections::HashMap;

use presto_endhost::{EdgePolicy, LabelTable, PathTag};
use presto_netsim::{FlowKey, HostId, Mac};
use presto_simcore::rng::hash_mix;
use presto_simcore::SimTime;

/// Rotate the path on every single skb.
#[derive(Debug, Default)]
pub struct PerPacketPolicy {
    labels: LabelTable,
    counters: HashMap<FlowKey, u64>,
}

impl PerPacketPolicy {
    /// An empty policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the path labels toward `dst`.
    pub fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        self.labels.set(dst, labels);
    }
}

impl EdgePolicy for PerPacketPolicy {
    fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        self.labels.set(dst, labels);
    }

    fn current_labels(&self, dst: HostId) -> Vec<Mac> {
        self.labels.current(dst)
    }

    fn assign(&mut self, _now: SimTime, flow: FlowKey, _len: u32, _retx: bool) -> PathTag {
        let labels = match self.labels.get(flow.dst) {
            Some(l) => l,
            None => {
                return PathTag {
                    dst_mac: Mac::host(flow.dst),
                    flowcell: 0,
                }
            }
        };
        let n = labels.len() as u64;
        let counter = self
            .counters
            .entry(flow)
            .or_insert_with(|| hash_mix(flow.digest(), 0xBB) % n);
        *counter += 1;
        PathTag {
            dst_mac: labels[(*counter % n) as usize],
            // Every skb is its own "cell": headers change per packet.
            flowcell: *counter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowKey {
        FlowKey::new(HostId(0), HostId(9), 5, 80)
    }

    #[test]
    fn every_skb_rotates() {
        let mut p = PerPacketPolicy::new();
        p.set_labels(
            HostId(9),
            (0..4).map(|t| Mac::shadow(HostId(9), t)).collect(),
        );
        let tags: Vec<PathTag> = (0..8)
            .map(|_| p.assign(SimTime::ZERO, flow(), 1460, false))
            .collect();
        for w in tags.windows(2) {
            assert_ne!(w[0].dst_mac, w[1].dst_mac);
            assert_eq!(w[1].flowcell, w[0].flowcell + 1);
        }
        let distinct: std::collections::HashSet<_> = tags.iter().map(|t| t.dst_mac).collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn even_byte_spread() {
        let mut p = PerPacketPolicy::new();
        p.set_labels(
            HostId(9),
            (0..4).map(|t| Mac::shadow(HostId(9), t)).collect(),
        );
        let mut counts: HashMap<Mac, u32> = HashMap::new();
        for _ in 0..400 {
            *counts
                .entry(p.assign(SimTime::ZERO, flow(), 1460, false).dst_mac)
                .or_default() += 1;
        }
        for &c in counts.values() {
            assert_eq!(c, 100);
        }
    }

    #[test]
    fn fallback_without_labels() {
        let mut p = PerPacketPolicy::new();
        let t = p.assign(SimTime::ZERO, flow(), 1460, false);
        assert_eq!(t.dst_mac, Mac::host(HostId(9)));
    }
}
