//! Per-flow ECMP path selection.

use presto_endhost::{EdgePolicy, LabelTable, PathTag};
use presto_netsim::{FlowKey, HostId, Mac};
use presto_simcore::rng::hash_mix;
use presto_simcore::SimTime;

/// ECMP as the paper implements it: every flow is hashed onto one of the
/// pre-configured end-to-end paths (shadow-MAC spanning trees) and stays
/// there forever. Collisions — two elephants hashing onto one path — are
/// the failure mode every Presto experiment exhibits.
#[derive(Debug, Default)]
pub struct EcmpPolicy {
    labels: LabelTable,
    /// Hash salt; vary per run for statistical independence across
    /// repetitions.
    pub salt: u64,
}

impl EcmpPolicy {
    /// A policy with the given per-run salt.
    pub fn new(salt: u64) -> Self {
        EcmpPolicy {
            labels: LabelTable::new(),
            salt,
        }
    }

    /// Install the path labels toward `dst`.
    pub fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        self.labels.set(dst, labels);
    }
}

impl EdgePolicy for EcmpPolicy {
    fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        self.labels.set(dst, labels);
    }

    fn current_labels(&self, dst: HostId) -> Vec<Mac> {
        self.labels.current(dst)
    }

    fn assign(&mut self, _now: SimTime, flow: FlowKey, _len: u32, _retx: bool) -> PathTag {
        match self.labels.get(flow.dst) {
            Some(labels) => {
                let idx = (hash_mix(flow.digest(), self.salt) % labels.len() as u64) as usize;
                PathTag {
                    dst_mac: labels[idx],
                    // One path for the whole flow: headers never change, so
                    // GRO merging is unimpeded.
                    flowcell: 0,
                }
            }
            None => PathTag {
                dst_mac: Mac::host(flow.dst),
                flowcell: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<Mac> {
        (0..4).map(|t| Mac::shadow(HostId(9), t)).collect()
    }

    fn flow(sport: u16) -> FlowKey {
        FlowKey::new(HostId(0), HostId(9), sport, 80)
    }

    #[test]
    fn flow_sticks_to_one_path() {
        let mut p = EcmpPolicy::new(1);
        p.set_labels(HostId(9), labels());
        let first = p.assign(SimTime::ZERO, flow(5), 1460, false);
        for _ in 0..100 {
            let t = p.assign(SimTime::ZERO, flow(5), 64 * 1024, false);
            assert_eq!(t, first);
        }
    }

    #[test]
    fn different_flows_spread() {
        let mut p = EcmpPolicy::new(2);
        p.set_labels(HostId(9), labels());
        let mut used = std::collections::HashSet::new();
        for sport in 0..64 {
            used.insert(p.assign(SimTime::ZERO, flow(sport), 1460, false).dst_mac);
        }
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn collisions_happen_with_few_flows() {
        // The statistical root of ECMP's problem: with as many flows as
        // paths, some salt exhibits a collision.
        let mut collision_seen = false;
        for salt in 0..20 {
            let mut p = EcmpPolicy::new(salt);
            p.set_labels(HostId(9), labels());
            let mut used = std::collections::HashSet::new();
            for sport in 0..4 {
                used.insert(p.assign(SimTime::ZERO, flow(sport), 1460, false).dst_mac);
            }
            if used.len() < 4 {
                collision_seen = true;
                break;
            }
        }
        assert!(collision_seen, "no hash collision over 20 salts?");
    }

    #[test]
    fn salt_changes_assignment() {
        let mut a = EcmpPolicy::new(1);
        let mut b = EcmpPolicy::new(99);
        a.set_labels(HostId(9), labels());
        b.set_labels(HostId(9), labels());
        let differs = (0..32).any(|s| {
            a.assign(SimTime::ZERO, flow(s), 1, false).dst_mac
                != b.assign(SimTime::ZERO, flow(s), 1, false).dst_mac
        });
        assert!(differs);
    }

    #[test]
    fn missing_labels_fall_back_to_direct() {
        let mut p = EcmpPolicy::new(0);
        let t = p.assign(SimTime::ZERO, flow(1), 1460, false);
        assert_eq!(t.dst_mac, Mac::host(HostId(9)));
    }
}
