//! Baseline edge load-balancing policies.
//!
//! The paper compares Presto against (§4, §5):
//!
//! * **ECMP** — "enumerating all possible end-to-end paths and randomly
//!   selecting a path for each flow": [`EcmpPolicy`] hashes each flow onto
//!   one shadow-MAC path for its lifetime. MPTCP subflows get their paths
//!   the same way (each subflow has its own 4-tuple).
//! * **Flowlet switching** — [`FlowletPolicy`] starts a new flowlet when
//!   the inter-segment gap exceeds an inactivity timer (100 µs / 500 µs in
//!   Fig 13) and round-robins flowlets over paths. Like CONGA's flowlets
//!   but congestion-oblivious and in the soft edge, exactly as the paper's
//!   comparison implements it.
//! * **Per-packet spraying** — [`PerPacketPolicy`] rotates the path on
//!   every skb; combined with TSO disabled it reproduces the per-packet
//!   schemes (RPS/DRB) whose CPU feasibility §2.1 questions.
//!
//! The related-work arena (ROADMAP's flowlet family) extends the set:
//!
//! * **FlowDyn** — [`FlowDynPolicy`] adapts the flowlet gap per flow from
//!   an inter-arrival EWMA instead of a fixed timer.
//! * **DiffFlow** — [`DiffFlowPolicy`] sprays mice per-skb but pins
//!   elephants past a byte threshold (consuming `flow_hint` size hints).
//! * **Sprinklers** — [`SprinklersPolicy`] stripes each flow at a
//!   randomized variable grain onto randomized paths.
//! * **CAFT** — [`CaftPolicy`] weights flowcell placement by per-path
//!   congestion/fault feedback (consuming `path_feedback` signals).
//! * **Prequal** — [`PrequalPolicy`] sprays toward probed-cold paths and
//!   replicas under the hot-cold lexicographic rule, consuming the
//!   receiver-load probes of `presto-probe` (opting in via
//!   `probe_params`) and selecting cold responders for
//!   partition-aggregate requests.
//!
//! Path changes rewrite the destination MAC, and real GRO only merges
//! packets with identical headers — so each policy reports a `flowcell`
//! tag that changes exactly when the wire headers would change.

pub mod caft;
pub mod diffflow;
pub mod ecmp;
pub mod flowdyn;
pub mod flowlet;
pub mod perpacket;
pub mod prequal;
pub mod sprinklers;

pub use caft::CaftPolicy;
pub use diffflow::DiffFlowPolicy;
pub use ecmp::EcmpPolicy;
pub use flowdyn::FlowDynPolicy;
pub use flowlet::FlowletPolicy;
pub use perpacket::PerPacketPolicy;
pub use prequal::PrequalPolicy;
pub use sprinklers::SprinklersPolicy;
