//! Flowlet switching.
//!
//! A flow is a series of bursts; when the gap between consecutive segments
//! exceeds an inactivity timer, a new *flowlet* begins and may safely take
//! a different path (Sinha et al.; CONGA). The paper's §2.1 analysis
//! (Fig 1) shows why this under-delivers: flowlet sizes are wildly
//! non-uniform — one flowlet can carry most of a transfer — and small
//! timers (100 µs) reintroduce reordering. Fig 13 compares 100 µs and
//! 500 µs timers against Presto.

use std::collections::HashMap;

use presto_endhost::{EdgePolicy, LabelTable, PathTag};
use presto_netsim::{FlowKey, HostId, Mac};
use presto_simcore::rng::hash_mix;
use presto_simcore::{SimDuration, SimTime};

#[derive(Debug)]
struct FlowletState {
    last_seen: SimTime,
    path_idx: usize,
    flowlet_id: u64,
    bytes_in_flowlet: u64,
}

/// Inactivity-gap flowlet switching over pre-configured paths.
#[derive(Debug)]
pub struct FlowletPolicy {
    labels: LabelTable,
    flows: HashMap<FlowKey, FlowletState>,
    /// Inactivity threshold that opens a new flowlet.
    pub gap: SimDuration,
    /// Completed flowlet sizes in bytes, for the Fig 1 analysis.
    pub flowlet_sizes: Vec<u64>,
}

impl FlowletPolicy {
    /// A policy with the given inactivity timer (100–500 µs in practice).
    pub fn new(gap: SimDuration) -> Self {
        FlowletPolicy {
            labels: LabelTable::new(),
            flows: HashMap::new(),
            gap,
            flowlet_sizes: Vec::new(),
        }
    }

    /// Install the path labels toward `dst`.
    pub fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        self.labels.set(dst, labels);
    }

    /// Flowlet sizes including the still-open flowlets (call at the end of
    /// a run to account the trailing flowlet of each flow). Open flowlets
    /// are appended in flow-key order — `flows` is a hash map, and its
    /// iteration order must never leak into the report digest.
    pub fn all_flowlet_sizes(&self) -> Vec<u64> {
        let mut out = self.flowlet_sizes.clone();
        let mut open: Vec<(u32, u32, u16, u16, u64)> = self
            .flows
            .iter()
            .filter(|(_, s)| s.bytes_in_flowlet > 0)
            .map(|(k, s)| (k.src.0, k.dst.0, k.sport, k.dport, s.bytes_in_flowlet))
            .collect();
        open.sort_unstable();
        out.extend(open.into_iter().map(|(.., bytes)| bytes));
        out
    }
}

impl EdgePolicy for FlowletPolicy {
    fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        self.labels.set(dst, labels);
    }

    fn current_labels(&self, dst: HostId) -> Vec<Mac> {
        self.labels.current(dst)
    }

    fn flowlet_sizes(&self) -> Vec<u64> {
        self.all_flowlet_sizes()
    }

    fn assign(&mut self, now: SimTime, flow: FlowKey, len: u32, _retx: bool) -> PathTag {
        let labels = match self.labels.get(flow.dst) {
            Some(l) => l,
            None => {
                return PathTag {
                    dst_mac: Mac::host(flow.dst),
                    flowcell: 0,
                }
            }
        };
        let n = labels.len();
        let gap = self.gap;
        let sizes = &mut self.flowlet_sizes;
        let state = self.flows.entry(flow).or_insert_with(|| FlowletState {
            last_seen: now,
            path_idx: (hash_mix(flow.digest(), 0xF10E) % n as u64) as usize,
            flowlet_id: 1,
            bytes_in_flowlet: 0,
        });
        if now.saturating_since(state.last_seen) > gap && state.bytes_in_flowlet > 0 {
            // Inactivity gap: close the flowlet, rotate the path.
            sizes.push(state.bytes_in_flowlet);
            state.bytes_in_flowlet = 0;
            state.path_idx = (state.path_idx + 1) % n;
            state.flowlet_id += 1;
        }
        state.last_seen = now;
        state.bytes_in_flowlet += len as u64;
        PathTag {
            dst_mac: labels[state.path_idx % n],
            // The flowlet id stands in for the changed wire headers: GRO
            // cannot merge across a path change.
            flowcell: state.flowlet_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowKey {
        FlowKey::new(HostId(0), HostId(9), 5, 80)
    }

    fn policy(gap_us: u64) -> FlowletPolicy {
        let mut p = FlowletPolicy::new(SimDuration::from_micros(gap_us));
        p.set_labels(
            HostId(9),
            (0..4).map(|t| Mac::shadow(HostId(9), t)).collect(),
        );
        p
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn back_to_back_segments_share_flowlet() {
        let mut p = policy(500);
        let a = p.assign(t(0), flow(), 1460, false);
        let b = p.assign(t(100), flow(), 1460, false);
        let c = p.assign(t(550), flow(), 1460, false); // 450us gap < 500us
        assert_eq!(a.dst_mac, b.dst_mac);
        assert_eq!(b.dst_mac, c.dst_mac);
        assert_eq!(a.flowcell, c.flowcell);
    }

    #[test]
    fn inactivity_gap_opens_new_flowlet() {
        let mut p = policy(500);
        let a = p.assign(t(0), flow(), 1460, false);
        let b = p.assign(t(501), flow(), 1460, false);
        assert_ne!(a.dst_mac, b.dst_mac, "path rotated");
        assert_eq!(b.flowcell, a.flowcell + 1);
        assert_eq!(p.flowlet_sizes, vec![1460]);
    }

    #[test]
    fn smaller_timer_creates_more_flowlets() {
        // The same arrival pattern with 100us vs 500us timers — the small
        // timer chops more flowlets (the paper: a 50 KB mouse became 4-5
        // flowlets at 100us).
        let arrivals: Vec<u64> = vec![0, 50, 200, 350, 700, 800, 1100, 1600, 1700, 2300];
        let count = |gap_us: u64| {
            let mut p = policy(gap_us);
            for &at in &arrivals {
                p.assign(t(at), flow(), 5000, false);
            }
            p.all_flowlet_sizes().len()
        };
        assert!(count(100) > count(500));
        assert_eq!(count(10_000), 1);
    }

    #[test]
    fn flowlet_sizes_are_nonuniform_under_bursts() {
        // One long burst then sparse trickle: the first flowlet dwarfs the
        // rest — Fig 1's observation.
        let mut p = policy(500);
        let mut now = 0u64;
        for _ in 0..100 {
            p.assign(t(now), flow(), 64 * 1024, false);
            now += 10; // back to back
        }
        for _ in 0..5 {
            now += 1000; // gaps
            p.assign(t(now), flow(), 1460, false);
        }
        let sizes = p.all_flowlet_sizes();
        let max = *sizes.iter().max().unwrap();
        let total: u64 = sizes.iter().sum();
        assert!(
            max as f64 / total as f64 > 0.9,
            "largest flowlet should dominate: {max}/{total}"
        );
    }

    #[test]
    fn rotation_is_round_robin() {
        let mut p = policy(10);
        let mut macs = Vec::new();
        for i in 0..8 {
            // Every assignment separated by > gap: every segment its own
            // flowlet.
            macs.push(p.assign(t(i * 100), flow(), 1460, false).dst_mac);
        }
        // 8 assignments over 4 paths: each path exactly twice, cyclically.
        assert_eq!(macs[0], macs[4]);
        assert_eq!(macs[1], macs[5]);
        assert_eq!(macs[2], macs[6]);
        let distinct: std::collections::HashSet<_> = macs.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn trait_set_labels_replaces_paths() {
        use presto_endhost::EdgePolicy as _;
        let mut p = policy(500);
        // Narrow to a single path via the trait method (controller update).
        let only = Mac::shadow(HostId(9), 2);
        EdgePolicy::set_labels(&mut p, HostId(9), vec![only]);
        for i in 0..5 {
            let tag = p.assign(t(i * 1000), flow(), 1460, false);
            assert_eq!(tag.dst_mac, only);
        }
    }

    #[test]
    fn flowlet_sizes_via_trait_hook() {
        use presto_endhost::EdgePolicy as _;
        let mut p = policy(500);
        p.assign(t(0), flow(), 4000, false);
        p.assign(t(1000), flow(), 2000, false);
        let sizes = EdgePolicy::flowlet_sizes(&p);
        assert_eq!(sizes, vec![4000, 2000]);
    }

    #[test]
    fn trailing_flowlet_counted_by_all_sizes() {
        let mut p = policy(500);
        p.assign(t(0), flow(), 1000, false);
        p.assign(t(10), flow(), 1000, false);
        assert!(p.flowlet_sizes.is_empty());
        assert_eq!(p.all_flowlet_sizes(), vec![2000]);
    }
}
