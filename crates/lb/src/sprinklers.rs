//! Sprinklers: randomized variable-size striping.
//!
//! Between per-packet spraying (perfect balance, heavy reordering) and
//! flow hashing (no reordering, hash collisions) sits striping at a
//! coarser, *randomized* grain (PAPERS.md, arXiv 1407.0006): each flow
//! is cut into stripes whose sizes are drawn independently around a mean,
//! and each stripe is thrown onto an independently drawn path. Randomized
//! sizes prevent the lock-step synchronization that fixed-size striping
//! (Presto's 64 KB cells) can exhibit when many flows start together;
//! randomized paths approximate weighted spraying without any per-path
//! state. Both draws are pure hashes of `(flow, stripe index)`, so the
//! schedule is deterministic and reproducible.

use std::collections::HashMap;

use presto_endhost::{EdgePolicy, LabelTable, PathTag};
use presto_netsim::{FlowKey, HostId, Mac};
use presto_simcore::rng::hash_mix;
use presto_simcore::SimTime;

/// Hash salt separating the path draw from the size draw.
const PATH_SALT: u64 = 0x59A1;
/// Hash salt for stripe-size draws.
const SIZE_SALT: u64 = 0x512E;

#[derive(Debug)]
struct SprinklerState {
    /// Bytes remaining in the current stripe.
    stripe_left: u64,
    /// Index of the current stripe (also the flowcell tag).
    stripe_idx: u64,
    /// Label index of the current stripe's path.
    path_idx: usize,
}

/// Variable-size randomized striping over the installed labels.
#[derive(Debug)]
pub struct SprinklersPolicy {
    labels: LabelTable,
    flows: HashMap<FlowKey, SprinklerState>,
    /// Mean stripe size in bytes; actual sizes are uniform in
    /// `[mean/2, 3·mean/2)`.
    pub mean_stripe_bytes: u64,
    /// Stripes created (the flowcell analog for telemetry).
    pub stripes_created: u64,
    /// Stripes assigned per spanning tree, indexed by tree id.
    spray_counts: Vec<u64>,
}

impl SprinklersPolicy {
    /// A policy striping at the given mean grain.
    pub fn new(mean_stripe_bytes: u64) -> Self {
        assert!(mean_stripe_bytes >= 2, "stripe mean too small");
        SprinklersPolicy {
            labels: LabelTable::new(),
            flows: HashMap::new(),
            mean_stripe_bytes,
            stripes_created: 0,
            spray_counts: Vec::new(),
        }
    }

    /// Deterministic size of stripe `idx` of `flow`: uniform in
    /// `[mean/2, 3·mean/2)`.
    fn stripe_size(&self, flow: FlowKey, idx: u64) -> u64 {
        let half = self.mean_stripe_bytes / 2;
        half + hash_mix(flow.digest() ^ idx, SIZE_SALT) % self.mean_stripe_bytes
    }

    /// Deterministic path of stripe `idx` of `flow` over `n` labels.
    fn stripe_path(flow: FlowKey, idx: u64, n: usize) -> usize {
        (hash_mix(flow.digest() ^ idx, PATH_SALT) % n as u64) as usize
    }
}

impl EdgePolicy for SprinklersPolicy {
    fn set_labels(&mut self, dst: HostId, labels: Vec<Mac>) {
        self.labels.set(dst, labels);
    }

    fn current_labels(&self, dst: HostId) -> Vec<Mac> {
        self.labels.current(dst)
    }

    fn flowcells_created(&self) -> u64 {
        self.stripes_created
    }

    fn path_spray_counts(&self) -> Vec<u64> {
        self.spray_counts.clone()
    }

    fn assign(&mut self, _now: SimTime, flow: FlowKey, len: u32, _retx: bool) -> PathTag {
        let labels = match self.labels.get(flow.dst) {
            Some(l) => l.to_vec(),
            None => {
                return PathTag {
                    dst_mac: Mac::host(flow.dst),
                    flowcell: 0,
                }
            }
        };
        let n = labels.len();
        if !self.flows.contains_key(&flow) {
            let size = self.stripe_size(flow, 0);
            self.flows.insert(
                flow,
                SprinklerState {
                    stripe_left: size,
                    stripe_idx: 0,
                    path_idx: Self::stripe_path(flow, 0, n),
                },
            );
            self.stripes_created += 1;
            let mac = labels[self.flows[&flow].path_idx % n];
            let tree = mac.tree() as usize;
            if self.spray_counts.len() <= tree {
                self.spray_counts.resize(tree + 1, 0);
            }
            self.spray_counts[tree] += 1;
        }
        // Pre-compute the (deterministic) next draw before borrowing the
        // state mutably, in case this skb exhausts the current stripe.
        let state = self.flows.get_mut(&flow).unwrap();
        if state.stripe_left == 0 {
            state.stripe_idx += 1;
            state.path_idx = Self::stripe_path(flow, state.stripe_idx, n);
            let idx = state.stripe_idx;
            let half = self.mean_stripe_bytes / 2;
            state.stripe_left =
                half + hash_mix(flow.digest() ^ idx, SIZE_SALT) % self.mean_stripe_bytes;
            self.stripes_created += 1;
            let mac = labels[state.path_idx % n];
            let tree = mac.tree() as usize;
            if self.spray_counts.len() <= tree {
                self.spray_counts.resize(tree + 1, 0);
            }
            self.spray_counts[tree] += 1;
        }
        let state = self.flows.get_mut(&flow).unwrap();
        // Like Algorithm 1, an skb larger than the stripe remainder still
        // ships whole on the current path; the deficit closes the stripe.
        state.stripe_left = state.stripe_left.saturating_sub(len as u64);
        PathTag {
            dst_mac: labels[state.path_idx % n],
            flowcell: state.stripe_idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(sport: u16) -> FlowKey {
        FlowKey::new(HostId(0), HostId(9), sport, 80)
    }

    fn policy(mean: u64) -> SprinklersPolicy {
        let mut p = SprinklersPolicy::new(mean);
        p.set_labels(
            HostId(9),
            (0..4).map(|t| Mac::shadow(HostId(9), t)).collect(),
        );
        p
    }

    #[test]
    fn stripes_have_variable_sizes() {
        let p = policy(64 * 1024);
        let sizes: Vec<u64> = (0..16).map(|i| p.stripe_size(flow(1), i)).collect();
        let distinct: std::collections::HashSet<_> = sizes.iter().collect();
        assert!(distinct.len() > 8, "sizes should vary: {sizes:?}");
        for &s in &sizes {
            assert!((32 * 1024..96 * 1024).contains(&s), "size {s} out of range");
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = || {
            let mut p = policy(8_000);
            (0..100)
                .map(|_| p.assign(SimTime::ZERO, flow(1), 1460, false))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn long_flow_visits_many_paths() {
        let mut p = policy(8_000);
        let macs: std::collections::HashSet<_> = (0..200)
            .map(|_| p.assign(SimTime::ZERO, flow(1), 1460, false).dst_mac)
            .collect();
        assert!(macs.len() >= 3, "striping should spread: {macs:?}");
    }

    #[test]
    fn flowcell_tag_tracks_stripes() {
        let mut p = policy(4_000);
        let mut last = 0;
        for _ in 0..50 {
            let tag = p.assign(SimTime::ZERO, flow(1), 1460, false);
            assert!(tag.flowcell >= last, "stripe ids are monotone");
            last = tag.flowcell;
        }
        assert!(last > 5, "1460B skbs over ~4KB stripes should advance");
        assert_eq!(p.flowcells_created(), last + 1);
    }

    #[test]
    fn spray_counts_sum_to_stripes() {
        let mut p = policy(4_000);
        for _ in 0..100 {
            p.assign(SimTime::ZERO, flow(1), 1460, false);
        }
        let total: u64 = p.path_spray_counts().iter().sum();
        assert_eq!(total, p.stripes_created);
    }

    #[test]
    fn fallback_without_labels() {
        let mut p = SprinklersPolicy::new(1000);
        let tag = p.assign(SimTime::ZERO, flow(1), 1460, false);
        assert_eq!(tag.dst_mac, Mac::host(HostId(9)));
    }
}
