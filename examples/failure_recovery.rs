//! Failure handling demo: fast failover and weighted multipathing.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```
//!
//! Kills the S1-L1 link under a random-bijection workload and shows
//! Presto's three stages (§3.3, Fig 17): symmetric operation, hardware
//! fast failover (leaf redirects its uplink traffic; traffic arriving at
//! the spine for the dead downlink is lost until TCP recovers), and the
//! controller's weighted label schedules that steer flowcells away from
//! the broken spanning tree entirely.

use presto_lab::simcore::{SimDuration, SimTime};
use presto_testbed::{bijection_elephants, FailureSpec, Scenario, SchemeSpec};

fn main() {
    println!("Presto failure handling — S1-L1 link failure, random bijection\n");
    let stages: [(&str, Option<FailureSpec>); 3] = [
        ("symmetry (link up)", None),
        (
            "fast failover only",
            Some(FailureSpec {
                at: SimTime::ZERO,
                leaf: 0,
                spine: 0,
                link: 0,
                controller_at: None,
            }),
        ),
        (
            "weighted multipathing",
            Some(FailureSpec {
                at: SimTime::ZERO,
                leaf: 0,
                spine: 0,
                link: 0,
                controller_at: Some(SimTime::ZERO),
            }),
        ),
    ];
    println!(
        "{:<24} {:>12} {:>10} {:>8} {:>12}",
        "stage", "tput(Gbps)", "fairness", "retx", "rtt p99(ms)"
    );
    for (stage, failure) in stages {
        let mut sc = Scenario::testbed16(SchemeSpec::presto(), 7);
        sc.duration = SimDuration::from_millis(80);
        sc.warmup = SimDuration::from_millis(20);
        sc.flows = bijection_elephants(16, 4, 7);
        sc.probes = sc.flows.iter().map(|f| (f.src, f.dst)).collect();
        sc.failure = failure;
        let r = sc.run();
        let mut rtt = r.rtt_ms.clone();
        println!(
            "{:<24} {:>12.2} {:>10.3} {:>8} {:>12.3}",
            stage,
            r.mean_elephant_tput(),
            r.fairness(),
            r.retransmissions,
            rtt.percentile(99.0).unwrap_or(0.0),
        );
    }
    println!("\nExpected shape (paper, Fig 17/18): throughput dips under pure");
    println!("failover, the weighted stage recovers most of it, and post-failure");
    println!("RTTs rise because the topology is no longer non-blocking.");
}
