//! Failure handling demo: fast failover, weighted multipathing, and the
//! full flap-and-recover timeline.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```
//!
//! Kills the S1-L1 link under a random-bijection workload and shows
//! Presto's three stages (§3.3, Fig 17): symmetric operation, hardware
//! fast failover (leaf redirects its uplink traffic; traffic arriving at
//! the spine for the dead downlink is lost until TCP recovers), and the
//! controller's weighted label schedules that steer flowcells away from
//! the broken spanning tree entirely. A final run flaps the link
//! (down, then back up mid-run) and prints the per-stage failover
//! timeline from the report.

use presto::prelude::*;

fn scenario(faults: FaultPlan) -> Scenario {
    let flows = bijection_elephants(16, 4, 7);
    let probes = flows.iter().map(|f| (f.src, f.dst)).collect();
    Scenario::builder(SchemeSpec::presto(), 7)
        .duration(SimDuration::from_millis(80))
        .warmup(SimDuration::from_millis(20))
        .elephants(flows)
        .probes(probes)
        .faults(faults)
        .build()
}

fn main() {
    println!("Presto failure handling — S1-L1 link failure, random bijection\n");
    let stages: [(&str, FaultPlan); 3] = [
        ("symmetry (link up)", FaultPlan::new()),
        (
            "fast failover only",
            FaultPlan::new().link_down(SimTime::ZERO, 0, 0, 0, Notify::Never),
        ),
        (
            "weighted multipathing",
            FaultPlan::new().link_down(SimTime::ZERO, 0, 0, 0, Notify::Immediate),
        ),
    ];
    println!(
        "{:<24} {:>12} {:>10} {:>8} {:>12}",
        "stage", "tput(Gbps)", "fairness", "retx", "rtt p99(ms)"
    );
    for (stage, faults) in stages {
        let r = scenario(faults).run();
        let mut rtt = r.rtt_ms.clone();
        println!(
            "{:<24} {:>12.2} {:>10.3} {:>8} {:>12.3}",
            stage,
            r.mean_elephant_tput(),
            r.fairness(),
            r.retransmissions,
            rtt.percentile(99.0).unwrap_or(0.0),
        );
    }

    // Flap the link mid-run: down at 30 ms, back up at 55 ms, with the
    // controller hearing about each transition 2 ms late. The report's
    // failover timeline shows goodput and loss through every stage.
    println!("\nFlap timeline — down at 30 ms, up at 55 ms, 2 ms notification lag\n");
    let flap = FaultPlan::new().flap_once(
        SimTime::from_millis(30),
        SimTime::from_millis(55),
        0,
        0,
        0,
        Notify::After(SimDuration::from_millis(2)),
    );
    let r = scenario(flap).run();
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>10}",
        "stage", "start(ms)", "end(ms)", "goodput(Gbps)", "loss"
    );
    for s in &r.failover_stages {
        println!(
            "{:<16} {:>10.1} {:>10.1} {:>12.2} {:>10.5}",
            s.name,
            s.start_ns as f64 / 1e6,
            s.end_ns as f64 / 1e6,
            s.goodput_gbps,
            s.loss_rate,
        );
    }
    println!("\nExpected shape (paper, Fig 17/18): throughput dips under pure");
    println!("failover, the weighted stage recovers most of it, loss is confined");
    println!("to the fast-failover window, and post-recovery goodput returns to");
    println!("the pre-failure level.");
}
