//! 3-tier Clos demo: multi-tier Presto with an aggregation-switch
//! failure and the four-stage failover timeline.
//!
//! ```text
//! cargo run --release --example three_tier [-- --shards N]
//! ```
//!
//! `--shards N` runs the same simulation on the sharded conservative
//! engine (per-pod event-queue domains, DESIGN.md §12); the results are
//! byte-identical to the serial engine at any shard count.
//!
//! Runs cross-pod elephants on a 2-pod, 3-tier Clos (hosts → ToR →
//! aggregation → core) with 4 aggregation switches per pod, each wired
//! to its own core — the controller carves 4 link-disjoint spanning
//! trees, the 3-tier analogue of the paper testbed's 4 spines. Mid-run
//! an aggregation switch in pod 0 dies and later returns:
//!
//! 1. **pre-failure** — symmetric spraying over all 4 trees, no loss.
//! 2. **fast-failover** — ToRs deflect uplink traffic around the dead
//!    switch via OpenFlow failover groups, but traffic already
//!    descending from the cores toward pod 0 blackholes at the dead
//!    aggregation switch until the controller hears of the failure.
//!    All of the run's loss lands in this window.
//! 3. **post-reweight** — the controller reweights label multisets so
//!    flowcells avoid every tree through the dead switch; loss stops.
//! 4. **post-recovery** — the switch returns, weights are restored, and
//!    goodput climbs back to the symmetric level.

use presto::prelude::*;

fn main() {
    let mut shards = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shards needs a positive integer");
            }
            other => panic!("unknown flag {other} (supported: --shards N)"),
        }
    }

    let spec = ThreeTierSpec {
        aggs_per_pod: 4,
        cores_per_group: 1,
        ..ThreeTierSpec::default()
    };
    println!(
        "3-tier Clos: {} pods x {} ToRs x {} hosts = {} servers, {} aggs/pod, oversubscription {:.1}:1, {} shard(s)\n",
        spec.pods,
        spec.tors_per_pod,
        spec.hosts_per_tor,
        spec.host_count(),
        spec.aggs_per_pod,
        spec.oversubscription(),
        shards,
    );

    // One bidirectional cross-pod elephant pair per ToR, so data is
    // always descending into pod 0; kill aggregation switch 0 of pod 0
    // (tier 1, index 0) at 15 ms with a 5 ms controller notification
    // delay, and bring it back at 40 ms.
    let report = Scenario::builder(SchemeSpec::presto(), 42)
        .three_tier(spec)
        .duration(SimDuration::from_millis(60))
        .warmup(SimDuration::from_millis(10))
        .elephants(vec![
            presto::workloads::FlowSpec::elephant(0, 8, SimTime::ZERO),
            presto::workloads::FlowSpec::elephant(4, 12, SimTime::ZERO),
            presto::workloads::FlowSpec::elephant(9, 1, SimTime::ZERO),
            presto::workloads::FlowSpec::elephant(13, 5, SimTime::ZERO),
        ])
        .faults(
            FaultPlan::new()
                .switch_down(
                    SimTime::from_millis(15),
                    1,
                    0,
                    Notify::After(SimDuration::from_millis(5)),
                )
                .switch_up(SimTime::from_millis(40), 1, 0, Notify::Immediate),
        )
        .shards(shards)
        .build()
        .run();

    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>8} {:>10}",
        "stage", "start(ms)", "end(ms)", "tput(Gbps)", "drops", "loss"
    );
    for s in &report.failover_stages {
        println!(
            "{:<16} {:>10.1} {:>10.1} {:>12.2} {:>8} {:>9.4}%",
            s.name,
            s.start_ns as f64 / 1e6,
            s.end_ns as f64 / 1e6,
            s.goodput_gbps,
            s.drops,
            s.loss_rate * 100.0,
        );
    }
    println!(
        "\nmean elephant tput {:.2} Gbps, {} retransmissions, run loss rate {:.4}%",
        report.mean_elephant_tput(),
        report.retransmissions,
        report.loss_rate * 100.0,
    );

    let lossy: Vec<&str> = report
        .failover_stages
        .iter()
        .filter(|s| s.drops > 0)
        .map(|s| s.name.as_str())
        .collect();
    println!("stages with loss: {lossy:?} (expected: [\"fast-failover\"])");
}
