//! The small-segment-flooding problem, live.
//!
//! ```text
//! cargo run --release --example gro_comparison
//! ```
//!
//! Sprays two flows' flowcells over two spine paths (§5's microbenchmark)
//! and shows why Presto must modify GRO: with the stock algorithm every
//! reordered packet ejects the merged segment, MTU-sized segments flood
//! the stack, CPU burns, and TCP sees reordering. Presto's Algorithm 2
//! holds segments across flowcell-boundary gaps and delivers in order.

use presto::prelude::*;
use presto::workloads::FlowSpec;

fn main() {
    println!("GRO comparison — 2 flows sprayed over 2 paths (Fig 5)\n");
    println!(
        "{:<16} {:>11} {:>9} {:>12} {:>11} {:>10}",
        "receiver GRO", "tput(Gbps)", "cpu(%)", "seg p50(B)", "ooo segs", "retx"
    );
    for scheme in [
        SchemeSpec::presto(),
        SchemeSpec::from_token("presto-official-gro").unwrap(),
    ] {
        let label = if scheme.name.contains("Official") {
            "Official GRO"
        } else {
            "Presto GRO"
        };
        let r = Scenario::builder(scheme, 1)
            .topology(ClosSpec {
                spines: 2,
                leaves: 2,
                hosts_per_leaf: 8,
                ..ClosSpec::default()
            })
            .duration(SimDuration::from_millis(80))
            .warmup(SimDuration::from_millis(20))
            .elephants(vec![
                FlowSpec::elephant(0, 8, SimTime::ZERO),
                FlowSpec::elephant(1, 9, SimTime::ZERO + SimDuration::from_micros(27)),
            ])
            .cpu_sample(SimDuration::from_millis(2))
            .build()
            .run();
        let mut segs = r.segment_bytes.clone();
        println!(
            "{:<16} {:>11.2} {:>9.1} {:>12.0} {:>11} {:>10}",
            label,
            r.mean_elephant_tput(),
            r.mean_cpu_util(),
            segs.percentile(50.0).unwrap_or(0.0),
            r.tcp_ooo_segments,
            r.retransmissions,
        );
    }
    println!("\nExpected shape (paper, Fig 5): stock GRO pushes MTU-sized segments");
    println!("(the small segment flooding problem), costs more CPU for less");
    println!("throughput, and exposes TCP to reordering; Presto GRO masks it all.");
}
