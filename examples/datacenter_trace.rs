//! Trace-driven datacenter workload: mice tails under realistic traffic.
//!
//! ```text
//! cargo run --release --example datacenter_trace
//! ```
//!
//! Replays a heavy-tailed flow mix (shaped after the IMC'09 datacenter
//! measurements the paper samples, ×10-scaled) on the 16-host testbed and
//! reports the mice (<100 KB) flow-completion-time percentiles for ECMP
//! and Presto — the Table 1 experiment. Presto's fine-grained spraying
//! keeps elephants from parking queues in front of mice, which is where
//! the 99th/99.9th-percentile wins come from.

use presto::prelude::*;
use presto::workloads::{FlowSpec, TraceWorkload};

fn trace_flows(seed: u64, horizon: SimTime) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for src in 0..16usize {
        let mut w = TraceWorkload::new(seed, src, 16, 4, SimDuration::from_millis(2));
        for tf in w.flows_until(horizon) {
            flows.push(FlowSpec {
                src,
                dst: tf.dst,
                start: tf.at,
                bytes: Some(tf.bytes),
                measure_fct: tf.bytes < 100_000,
            });
        }
    }
    flows
}

fn main() {
    println!("Trace-driven workload — mice FCT percentiles (ms)\n");
    let duration = SimDuration::from_millis(300);
    println!(
        "{:<8} {:>6} {:>9} {:>9} {:>9} {:>11} {:>10}",
        "scheme", "mice", "p50", "p99", "p99.9", "eleph Gbps", "loss(%)"
    );
    for scheme in [SchemeSpec::ecmp(), SchemeSpec::presto()] {
        let name = scheme.name;
        let r = Scenario::builder(scheme, 3)
            .duration(duration)
            .warmup(duration / 4)
            .flows(trace_flows(3, SimTime::ZERO + duration))
            .build()
            .run();
        let mut fct = r.mice_fct_ms.clone();
        println!(
            "{:<8} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>11.2} {:>10.4}",
            name,
            fct.len(),
            fct.percentile(50.0).unwrap_or(0.0),
            fct.percentile(99.0).unwrap_or(0.0),
            fct.percentile(99.9).unwrap_or(0.0),
            r.mean_elephant_tput(),
            r.loss_rate * 100.0,
        );
    }
    println!("\nExpected shape (paper, Table 1): similar medians, with Presto");
    println!("cutting the 99th/99.9th percentile FCT by over half.");
}
