//! Building non-default fabrics with the library API.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```
//!
//! Shows three things the `Scenario` presets don't expose directly:
//!
//! 1. a Clos fabric with γ = 2 parallel leaf-spine cables — the controller
//!    allocates ν·γ spanning trees (§3.1);
//! 2. shared-memory switch buffering with dynamic thresholds (the paper's
//!    G8264 is a shared-buffer switch);
//! 3. driving the simulator directly via `Scenario::build()` to inspect
//!    internal state after the run.

use presto::prelude::*;
use presto::workloads::FlowSpec;

fn main() {
    println!("Custom fabric: 2 spines x 2 parallel links, shared-buffer switches\n");
    let sc = Scenario::builder(SchemeSpec::presto(), 5)
        .topology(ClosSpec {
            spines: 2,
            leaves: 2,
            hosts_per_leaf: 8,
            links_per_pair: 2,
            shared_buffer: Some((4 * 1024 * 1024, 1.0)),
            ..ClosSpec::default()
        })
        .duration(SimDuration::from_millis(80))
        .warmup(SimDuration::from_millis(20))
        .elephants(
            (0..4)
                .map(|i| FlowSpec::elephant(i, 8 + i, SimTime::ZERO))
                .collect(),
        )
        .build();

    let mut sim = sc.build();
    // The controller allocated nu * gamma = 4 disjoint trees.
    let trees = sim.controller.as_ref().map(|c| c.tree_count()).unwrap_or(0);
    println!("spanning trees allocated: {trees}");
    let report = sim.run();
    println!(
        "mean elephant tput:       {:.2} Gbps",
        report.mean_elephant_tput()
    );
    println!("fairness:                 {:.3}", report.fairness());
    println!("flowcells created:        {}", report.flowcells);
    println!("loss rate:                {:.5}%", report.loss_rate * 100.0);

    // Peek at the shared pools after the run.
    for (i, sw) in sim
        .topo
        .leaves
        .iter()
        .chain(sim.topo.spines.iter())
        .enumerate()
    {
        if let Some(buf) = sim.topo.fabric.shared_buffer(*sw) {
            println!(
                "switch {i}: shared pool {} bytes, residual occupancy {}",
                buf.pool_bytes,
                buf.used()
            );
        }
    }
    println!("\n4 flows over 4 trees (2 spines x 2 cables) should sit near line rate");
    println!("with fairness ~1.0 — the tree abstraction hides where capacity lives.");
}
