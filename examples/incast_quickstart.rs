//! The incast scenario from the README, runnable: partition-aggregate
//! under DCTCP with fabric ECN marking.
//!
//! ```text
//! cargo run --release --example incast_quickstart
//! ```
//!
//! An aggregator fans a request to 8 workers every millisecond; each
//! returns 32 KiB, and the request completes when the last response
//! lands. The 280 µs deadline sits in the response tail, so the printed
//! miss fraction is the scenario's headline metric — compare schemes by
//! swapping `SchemeSpec::presto()` for `SchemeSpec::ecmp()`, or run the
//! whole grid via `campaigns/incast.toml`.

use presto::prelude::*;

fn main() {
    let report = Scenario::builder(
        SchemeSpec::presto()
            .with_cc(CcKind::Dctcp)
            .with_ecn(Some(DEFAULT_ECN_THRESHOLD)),
        1,
    )
    .duration(SimDuration::from_millis(40))
    .warmup(SimDuration::from_millis(10))
    .incast(IncastSpec {
        aggregator: 0,
        fanout: 8,
        bytes_per_worker: 32 * 1024,
        interval: SimDuration::from_micros(1000),
        deadline: SimDuration::from_micros(280),
    })
    .build()
    .run();
    println!(
        "missed {}/{} deadlines ({} CE marks)",
        report.incast_deadline_misses, report.incast_requests, report.ce_marked_packets
    );
}
