//! Quickstart: run Presto against ECMP on the paper's 16-host testbed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the Fig 3 topology (4 spines × 4 leaves × 4 hosts), starts a
//! stride(8) elephant workload plus latency probes, and prints the
//! headline comparison of the paper: Presto's flowcell spraying tracks
//! the optimal non-blocking switch, ECMP's per-flow hashing does not.

use presto::prelude::*;

fn main() {
    println!("Presto quickstart — stride(8) on the 16-host testbed\n");
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>12}",
        "scheme", "tput(Gbps)", "fairness", "rtt p50(ms)", "rtt p99(ms)"
    );
    for scheme in [
        SchemeSpec::ecmp(),
        SchemeSpec::mptcp(),
        SchemeSpec::presto(),
        SchemeSpec::optimal(),
    ] {
        let name = scheme.name;
        let r = Scenario::builder(scheme, 42)
            .duration(SimDuration::from_millis(80))
            .warmup(SimDuration::from_millis(20))
            .elephants(stride_elephants(16, 8))
            .probes((0..16).map(|i| (i, (i + 8) % 16)).collect())
            .build()
            .run();
        let mut rtt = r.rtt_ms.clone();
        println!(
            "{:<10} {:>12.2} {:>10.3} {:>12.3} {:>12.3}",
            name,
            r.mean_elephant_tput(),
            r.fairness(),
            rtt.percentile(50.0).unwrap_or(0.0),
            rtt.percentile(99.0).unwrap_or(0.0),
        );
    }
    println!("\nExpected shape (paper, Fig 15/13): Presto within a few percent of");
    println!("Optimal; ECMP well below with poor fairness; MPTCP in between.");
}
