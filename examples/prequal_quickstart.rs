//! Receiver-load-aware spraying (Prequal-style) quickstart.
//!
//! ```text
//! cargo run --release --example prequal_quickstart
//! ```
//!
//! Static flowcell WRR is blind to receiver load. Here an aggregator
//! fans requests to 8 workers while two of those workers also source
//! unbounded elephants (their uplinks are saturated) — the skewed
//! north-south shape where load-oblivious replica choice provably
//! hurts. The `prequal` scheme probes per-host load (requests in
//! flight + latency EWMA), keeps a bounded hot/cold pool under the HCL
//! rule, and steers both spraying and replica selection toward cold
//! hosts. Compare the printed deadline-miss counts; the same grid is
//! committed as `campaigns/skew.toml`.

use presto::prelude::*;
use presto::workloads::FlowSpec;

fn run_skewed(spec: SchemeSpec) -> Report {
    Scenario::builder(spec, 1)
        .duration(SimDuration::from_millis(40))
        .warmup(SimDuration::from_millis(10))
        // Hosts 1 and 2 are incast responders *and* elephant sources:
        // their uplinks stay saturated for the whole run.
        .elephants(vec![
            FlowSpec::elephant(1, 9, SimTime::ZERO),
            FlowSpec::elephant(2, 10, SimTime::ZERO),
        ])
        .incast(IncastSpec {
            aggregator: 0,
            fanout: 8,
            bytes_per_worker: 32 * 1024,
            interval: SimDuration::from_micros(1000),
            deadline: SimDuration::from_micros(400),
        })
        .build()
        .run()
}

fn main() {
    let presto = run_skewed(SchemeSpec::presto());
    let prequal = run_skewed(SchemeSpec::prequal());

    println!("skewed partition-aggregate, 16 hosts, 2 hot responders:\n");
    for (name, r) in [("presto (static WRR)", &presto), ("prequal", &prequal)] {
        println!(
            "  {name:<22} missed {}/{} deadlines",
            r.incast_deadline_misses, r.incast_requests
        );
    }
    println!(
        "\nprobe pool: {} rounds, {} samples ({} hot / {} cold under HCL)",
        prequal.probe_rounds,
        prequal.probe_pool_samples,
        prequal.probe_pool_hot,
        prequal.probe_pool_cold
    );
    assert_eq!(presto.probe_rounds, 0, "static WRR never opts into probing");
    assert!(
        prequal.incast_deadline_misses < presto.incast_deadline_misses,
        "load-aware replica choice dodges the saturated responders"
    );
}
