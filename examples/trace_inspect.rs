//! Thin wrapper over the first-class trace tool (`src/bin/trace.rs`),
//! kept so existing `cargo run --example trace_inspect` invocations and
//! docs stay valid. All behavior — file summaries, `--json` output, the
//! Fig 5 demo with `--write-jsonl` / `--write-chrome` exports — lives in
//! [`presto::trace_tool`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match presto::trace_tool::TraceArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match presto::trace_tool::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace_inspect: {msg}");
            ExitCode::from(1)
        }
    }
}
