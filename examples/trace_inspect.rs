//! Inspect a telemetry trace, or generate one live.
//!
//! ```text
//! # Demo mode: run the Fig 5 GRO comparison with telemetry attached and
//! # summarize both traces (Presto GRO vs stock GRO under spraying).
//! cargo run --release --example trace_inspect
//!
//! # Inspect a previously exported JSONL trace.
//! cargo run --release --example trace_inspect -- trace.jsonl
//!
//! # Demo mode, also exporting the Presto-side trace for later runs or
//! # for chrome://tracing / Perfetto.
//! cargo run --release --example trace_inspect -- \
//!     --write-jsonl trace.jsonl --write-chrome trace.json
//! ```
//!
//! The summary shows the top-N drop sites, the GRO flush-reason breakdown
//! (in-flowcell gaps = loss vs flowcell-boundary gaps = reordering — the
//! discrimination at the heart of Algorithm 2), the per-path spray
//! histogram, queue-depth percentiles per link, and the event-queue
//! profile. Build with `--features telemetry` to capture individual trace
//! events as well; counters and samples are collected either way.

use presto::prelude::*;
use presto::workloads::FlowSpec;

fn usage() -> ! {
    eprintln!("usage: trace_inspect [TRACE.jsonl] [--write-jsonl PATH] [--write-chrome PATH]");
    std::process::exit(2);
}

fn main() {
    let mut trace_file: Option<String> = None;
    let mut write_jsonl: Option<String> = None;
    let mut write_chrome: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--write-jsonl" => write_jsonl = Some(args.next().unwrap_or_else(|| usage())),
            "--write-chrome" => write_chrome = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ if a.starts_with('-') => usage(),
            _ if trace_file.is_none() => trace_file = Some(a),
            _ => usage(),
        }
    }

    if let Some(path) = trace_file {
        // File mode: summarize an exported trace.
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_inspect: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let rep = TelemetryReport::from_jsonl(&text);
        println!("{}", rep.summary());
        return;
    }

    // Demo mode: the Fig 5 microbenchmark — two flows sprayed over two
    // spine paths — once with Presto's GRO and once with the stock Linux
    // engine, telemetry attached to both.
    println!("trace_inspect demo — Fig 5 GRO comparison with telemetry attached\n");
    for scheme in [SchemeSpec::presto(), SchemeSpec::presto_official_gro()] {
        let sc = Scenario::builder(scheme, 1)
            .topology(ClosSpec {
                spines: 2,
                leaves: 2,
                hosts_per_leaf: 8,
                ..ClosSpec::default()
            })
            .duration(SimDuration::from_millis(40))
            .warmup(SimDuration::from_millis(10))
            .elephants(vec![
                FlowSpec::elephant(0, 8, SimTime::ZERO),
                FlowSpec::elephant(1, 9, SimTime::ZERO + SimDuration::from_micros(27)),
            ])
            .build();
        let (report, tel) = sc.run_traced();
        println!(
            "=== {} (mean elephant tput {:.2} Gbps) ===",
            report.scheme,
            report.mean_elephant_tput()
        );
        println!("{}", tel.summary());
        if report.scheme == SchemeSpec::presto().name {
            if let Some(path) = &write_jsonl {
                std::fs::write(path, tel.to_jsonl()).expect("write jsonl");
                println!("wrote JSONL trace to {path}");
            }
            if let Some(path) = &write_chrome {
                std::fs::write(path, tel.to_chrome_trace()).expect("write chrome trace");
                println!("wrote chrome://tracing file to {path}");
            }
        }
        println!();
    }
    println!("Reading the flush-reason tables: under spraying, stock GRO ejects at");
    println!("every flowcell boundary (BoundaryEject — reordering), while Presto GRO");
    println!("absorbs those boundaries (BoundaryGapFilled) and reserves immediate");
    println!("pushes for in-flowcell gaps (InFlowcellGap — genuine loss).");
}
