#!/usr/bin/env bash
# End-to-end smoke test for the receiver-load probe subsystem: the
# `prequal` scheme against static-WRR Presto and per-flow ECMP on the
# skewed partition-aggregate campaign.
#
# Gated exactly like the bake-off (ci/bakeoff_smoke.sh), proving the
# probe subsystem end to end:
#   1. Run the committed skew campaign — presto/ecmp/prequal × (plain
#      incast, skewed incast with two saturated responders) × two
#      seeds — into a scratch store.
#   2. Run it again with --require-cached: the second run must answer
#      every point from the content-addressed store (zero executions),
#      which pins the canonical-text fingerprints of the probing scheme
#      and the skew workload.
#   3. `lab diff` the fresh table against the committed baseline with
#      default tolerances — the deadline-miss gate must pass.
#   4. The baseline itself must show the headline result: prequal's
#      receiver-load-aware replica selection misses STRICTLY fewer
#      deadlines than static-WRR Presto on the skewed points.
#   5. Render the report and require every figure artifact (canonical
#      .txt AND rendered .svg, including the probe-pool composition
#      figure) byte-identical to the goldens under
#      baselines/figures/skew/. Re-bless intentional changes with:
#        lab run campaigns/skew.toml --store S && \
#        lab report skew --store S --out R --baseline baselines/skew.json && \
#        cp R/figures/* baselines/figures/skew/
#   6. The report and trace viewer must be single self-contained files.
set -euo pipefail
cd "$(dirname "$0")/.."

CAMPAIGN=campaigns/skew.toml
BASELINE=baselines/skew.json
GOLDENS=baselines/figures/skew
STORE=$(mktemp -d)
REPORT_OUT="${REPORT_OUT:-$STORE/report}"
trap 'rm -rf "$STORE"' EXIT

echo "==> build the lab CLI (profile lab: release + unwind)"
cargo build --quiet --profile lab --bin lab
LAB=target/lab/lab

echo "==> run the committed skew grid (fresh store)"
"$LAB" run "$CAMPAIGN" --store "$STORE/run" --quiet

echo "==> re-run: every point must be a cache hit"
"$LAB" run "$CAMPAIGN" --store "$STORE/run" --require-cached --quiet

echo "==> diff against the committed baseline (default tolerances)"
"$LAB" diff "$BASELINE" "$STORE/run/skew/table.json"

echo "==> baseline shows prequal strictly beating static WRR on skew"
sum_misses() {
    grep "\"$1/testbed16/skew" "$BASELINE" \
        | sed -n 's/.*"deadline_misses":\([0-9]*\).*/\1/p' \
        | awk '{ s += $1 } END { print s + 0 }'
}
presto_miss=$(sum_misses presto)
prequal_miss=$(sum_misses prequal)
if [ "$prequal_miss" -ge "$presto_miss" ]; then
    echo "FAIL: prequal ($prequal_miss) does not strictly improve on" \
         "static-WRR Presto ($presto_miss) deadline misses — the" \
         "receiver-load signal stopped paying for itself" >&2
    exit 1
fi
echo "    prequal=$prequal_miss vs presto=$presto_miss misses on the skewed points"

echo "==> probing stays opt-in: non-prequal rows carry no probe fields"
if grep '"label":"\(presto\|ecmp\)/' "$BASELINE" | grep -q probe_rounds; then
    echo "FAIL: a non-probing row encodes probe fields — the opt-in" \
         "contract (and every pre-probe digest) is broken" >&2
    exit 1
fi
echo "    probe fields only on prequal rows"

echo "==> render the report (diff vs committed baseline must pass)"
"$LAB" report skew --store "$STORE/run" --out "$REPORT_OUT" \
    --baseline "$BASELINE" --viewer

echo "==> figure artifacts must match the committed goldens byte-for-byte"
if ! diff -r "$GOLDENS" "$REPORT_OUT/figures"; then
    echo "FAIL: figure artifacts drifted from $GOLDENS" >&2
    echo "      (if the change is intended, re-bless per the header of $0)" >&2
    exit 1
fi
count=$(ls "$GOLDENS" | wc -l)
echo "    $count golden artifact(s) identical"

echo "==> report and viewer are single self-contained files"
for page in "$REPORT_OUT/index.html" "$REPORT_OUT/viewer.html"; do
    [ -s "$page" ] || { echo "FAIL: $page missing or empty" >&2; exit 1; }
    if grep -Eq 'src="http|href="http|<script src|<link rel="stylesheet" href' "$page"; then
        echo "FAIL: $page references external resources" >&2
        exit 1
    fi
done
echo "    no external references"

echo "skew smoke: OK (report at $REPORT_OUT)"
