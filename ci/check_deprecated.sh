#!/usr/bin/env bash
# Deprecation gate for the ScenarioBuilder migration.
#
# Two checks:
#   1. `cargo clippy --workspace --all-targets -- -D deprecated` — no code
#      outside an `#[allow(deprecated)]` block may use the deprecated
#      Scenario fields (or any other deprecated item).
#   2. Every `#[allow(deprecated)]` marker must live in a file named in
#      ci/deprecated_allowlist.txt, so the escape hatch cannot quietly
#      spread: new call sites migrate to the builder instead of silencing
#      the lint.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> clippy with deprecation warnings fatal"
cargo clippy --workspace --all-targets --quiet -- -D deprecated

echo "==> allow(deprecated) markers confined to the allowlist"
allowlist=ci/deprecated_allowlist.txt
violations=0
while IFS=: read -r file _; do
    rel=${file#./}
    if ! grep -qxF "$rel" <(grep -v '^\s*#' "$allowlist" | grep -v '^\s*$'); then
        echo "error: $rel uses #[allow(deprecated)] but is not in $allowlist" >&2
        violations=1
    fi
done < <(grep -rn 'allow(deprecated)' --include='*.rs' \
    --exclude-dir=target --exclude-dir=vendor . || true)

if [ "$violations" -ne 0 ]; then
    echo "Migrate the file to ScenarioBuilder or, if it must construct" >&2
    echo "Scenario fields directly, add it to $allowlist with a comment." >&2
    exit 1
fi
echo "deprecation gate passed"
