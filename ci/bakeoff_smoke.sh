#!/usr/bin/env bash
# End-to-end smoke test for the LB scheme arena bake-off.
#
# The bake-off is gated exactly like the paper grid (DESIGN.md §11, §13),
# proving the registry-driven scheme axis end to end:
#   1. Run the committed bake-off campaign — Presto vs the flowlet
#      family and the arena schemes — into a scratch store.
#   2. Run it again with --require-cached: the second run must answer
#      every point from the content-addressed store (zero executions),
#      which pins the canonical-text fingerprints of all eight schemes.
#   3. `lab diff` the fresh table against the committed baseline with
#      default tolerances — must pass.
#   4. Render the report and require every figure artifact (canonical
#      .txt AND rendered .svg) byte-identical to the goldens under
#      baselines/figures/bakeoff/. Re-bless intentional changes with:
#        lab run campaigns/bakeoff.toml --store S && \
#        lab report bakeoff --store S --out R --baseline baselines/bakeoff.json && \
#        cp R/figures/* baselines/figures/bakeoff/
#   5. The report and trace viewer must be single self-contained files.
set -euo pipefail
cd "$(dirname "$0")/.."

CAMPAIGN=campaigns/bakeoff.toml
BASELINE=baselines/bakeoff.json
GOLDENS=baselines/figures/bakeoff
STORE=$(mktemp -d)
REPORT_OUT="${REPORT_OUT:-$STORE/report}"
trap 'rm -rf "$STORE"' EXIT

echo "==> build the lab CLI (profile lab: release + unwind)"
cargo build --quiet --profile lab --bin lab
LAB=target/lab/lab

echo "==> run the committed bake-off grid (fresh store)"
"$LAB" run "$CAMPAIGN" --store "$STORE/run" --quiet

echo "==> re-run: every point must be a cache hit"
"$LAB" run "$CAMPAIGN" --store "$STORE/run" --require-cached --quiet

echo "==> diff against the committed baseline (default tolerances)"
"$LAB" diff "$BASELINE" "$STORE/run/bakeoff/table.json"

echo "==> render the report (diff vs committed baseline must pass)"
"$LAB" report bakeoff --store "$STORE/run" --out "$REPORT_OUT" \
    --baseline "$BASELINE" --viewer

echo "==> figure artifacts must match the committed goldens byte-for-byte"
if ! diff -r "$GOLDENS" "$REPORT_OUT/figures"; then
    echo "FAIL: figure artifacts drifted from $GOLDENS" >&2
    echo "      (if the change is intended, re-bless per the header of $0)" >&2
    exit 1
fi
count=$(ls "$GOLDENS" | wc -l)
echo "    $count golden artifact(s) identical"

echo "==> report and viewer are single self-contained files"
for page in "$REPORT_OUT/index.html" "$REPORT_OUT/viewer.html"; do
    [ -s "$page" ] || { echo "FAIL: $page missing or empty" >&2; exit 1; }
    if grep -Eq 'src="http|href="http|<script src|<link rel="stylesheet" href' "$page"; then
        echo "FAIL: $page references external resources" >&2
        exit 1
    fi
done
echo "    no external references"

echo "bakeoff smoke: OK (report at $REPORT_OUT)"
