#!/usr/bin/env bash
# Sharded-engine smoke test: byte-identical digests at every shard count.
#
# The conservative sharded engine (DESIGN.md §12) promises that the
# report digest is *byte-identical* to the serial engine at any shard
# count. This script enforces that end to end, in release mode, on a
# reduced paper-grid point (presto / 3-tier / stride elephants):
#
#   1. run the point serially (--shards 1) and record the digest,
#   2. run it at --shards 8 and diff — any divergence fails,
#   3. run a sharded multi-pod point with more shards than pods (empty
#      domains must be harmless).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build shard_check (release)"
cargo build --quiet --release --bin shard_check
CHECK=target/release/shard_check

run_digest() {
    out=$("$CHECK" "$@")
    echo "    $out" >&2
    echo "$out" | sed -n 's/.*digest=\(0x[0-9a-f]*\).*/\1/p'
}

echo "==> reduced paper-grid point, serial vs 8 shards"
SERIAL=$(run_digest --shards 1)
SHARDED=$(run_digest --shards 8)
if [ -z "$SERIAL" ] || [ "$SERIAL" != "$SHARDED" ]; then
    echo "FAIL: shards=8 digest $SHARDED != serial digest $SERIAL" >&2
    exit 1
fi
echo "    digests identical: $SERIAL"

echo "==> more shards than pods (empty domains)"
WIDE=$(run_digest --pods 4 --shards 16)
NARROW=$(run_digest --pods 4 --shards 1)
if [ -z "$NARROW" ] || [ "$WIDE" != "$NARROW" ]; then
    echo "FAIL: shards=16 digest $WIDE != serial digest $NARROW" >&2
    exit 1
fi
echo "    digests identical: $NARROW"

echo "shard smoke: OK"
