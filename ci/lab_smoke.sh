#!/usr/bin/env bash
# End-to-end smoke test for the presto-lab campaign subsystem.
#
# Exercises the full CI contract from DESIGN.md §11:
#   1. Run the committed paper grid into a scratch store.
#   2. Run it again with --require-cached: the second run must answer
#      every point from the store (zero scenario executions).
#   3. `lab diff` the fresh table against the committed baseline with
#      default tolerances — must pass.
#   4. Re-run the grid with an injected 50% goodput regression into a
#      second store — `lab diff` must flag it and exit nonzero.
#
# The lab binary is built with the `lab` profile (release speed, but
# panic = "unwind" so catch_unwind isolation works — see Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

CAMPAIGN=campaigns/paper_grid.toml
BASELINE=baselines/paper_grid.json
STORE=$(mktemp -d)
trap 'rm -rf "$STORE"' EXIT

echo "==> build the lab CLI (profile lab: release + unwind)"
cargo build --quiet --profile lab --bin lab
LAB=target/lab/lab

echo "==> run the committed paper grid (fresh store)"
"$LAB" run "$CAMPAIGN" --store "$STORE/run" --quiet

echo "==> re-run: every point must be a cache hit"
"$LAB" run "$CAMPAIGN" --store "$STORE/run" --require-cached --quiet

echo "==> diff against the committed baseline (default tolerances)"
"$LAB" diff "$BASELINE" "$STORE/run/paper_grid/table.json"

echo "==> injected goodput regression must be caught"
"$LAB" run "$CAMPAIGN" --store "$STORE/bad" --inject-goodput-scale 0.5 --quiet
if "$LAB" diff "$BASELINE" "$STORE/bad/paper_grid/table.json" >/dev/null 2>&1; then
    echo "FAIL: lab diff accepted a 50% goodput regression" >&2
    exit 1
fi
echo "    regression flagged, exit code nonzero — as required"

echo "lab smoke: OK"
