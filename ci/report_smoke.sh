#!/usr/bin/env bash
# End-to-end smoke test for the presto-report figure subsystem.
#
# The observability contract from DESIGN.md §13:
#   1. Run the committed paper grid into a scratch store (traces on).
#   2. `lab report` it against the committed baseline table — the report,
#      figures and trace viewer must render, and the diff must pass.
#   3. Every figure artifact (canonical .txt AND rendered .svg) must be
#      byte-identical to the committed goldens under
#      baselines/figures/paper_grid/ — figures are regression-gated
#      exactly like report digests. Re-bless intentional changes with:
#        lab run campaigns/paper_grid.toml --store S && \
#        lab report paper_grid --store S && \
#        cp S/paper_grid/report/figures/* baselines/figures/paper_grid/
#   4. The report and viewer must be single self-contained files (no
#      external fetches), so they can be passed around as CI artifacts.
#
# The rendered report is left in $REPORT_OUT (default: a scratch dir)
# for the CI workflow to upload as an artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

CAMPAIGN=campaigns/paper_grid.toml
BASELINE=baselines/paper_grid.json
GOLDENS=baselines/figures/paper_grid
STORE=$(mktemp -d)
REPORT_OUT="${REPORT_OUT:-$STORE/report}"
trap 'rm -rf "$STORE"' EXIT

echo "==> build the lab CLI (profile lab: release + unwind)"
cargo build --quiet --profile lab --bin lab
LAB=target/lab/lab

echo "==> run the committed paper grid (fresh store, traces on)"
"$LAB" run "$CAMPAIGN" --store "$STORE/run" --quiet

echo "==> render the report (diff vs committed baseline must pass)"
"$LAB" report paper_grid --store "$STORE/run" --out "$REPORT_OUT" \
    --baseline "$BASELINE" --viewer

echo "==> figure artifacts must match the committed goldens byte-for-byte"
if ! diff -r "$GOLDENS" "$REPORT_OUT/figures"; then
    echo "FAIL: figure artifacts drifted from $GOLDENS" >&2
    echo "      (if the change is intended, re-bless per the header of $0)" >&2
    exit 1
fi
count=$(ls "$GOLDENS" | wc -l)
echo "    $count golden artifact(s) identical"

echo "==> report and viewer are single self-contained files"
for page in "$REPORT_OUT/index.html" "$REPORT_OUT/viewer.html"; do
    [ -s "$page" ] || { echo "FAIL: $page missing or empty" >&2; exit 1; }
    if grep -Eq 'src="http|href="http|<script src|<link rel="stylesheet" href' "$page"; then
        echo "FAIL: $page references external resources" >&2
        exit 1
    fi
done
echo "    no external references"

echo "report smoke: OK (report at $REPORT_OUT)"
