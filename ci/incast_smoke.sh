#!/usr/bin/env bash
# End-to-end smoke test for the transport axis: DCTCP + fabric ECN on
# the collective workloads (partition-aggregate incast, ring
# all-reduce).
#
# Gated exactly like the bake-off (ci/bakeoff_smoke.sh), proving the cc
# and ecn campaign axes end to end:
#   1. Run the committed incast campaign — Presto vs ECMP × (CUBIC,
#      DCTCP+ECN) × both collectives — into a scratch store.
#   2. Run it again with --require-cached: the second run must answer
#      every point from the content-addressed store (zero executions),
#      which pins the canonical-text fingerprints of the cc/ecn axes.
#   3. `lab diff` the fresh table against the committed baseline with
#      default tolerances — the deadline-miss gate must pass.
#   4. The baseline itself must show the headline result: a nonzero
#      deadline-miss delta between Presto×DCTCP and ECMP×DCTCP.
#   5. Render the report and require every figure artifact (canonical
#      .txt AND rendered .svg) byte-identical to the goldens under
#      baselines/figures/incast/. Re-bless intentional changes with:
#        lab run campaigns/incast.toml --store S && \
#        lab report incast --store S --out R --baseline baselines/incast.json && \
#        cp R/figures/* baselines/figures/incast/
#   6. The report and trace viewer must be single self-contained files.
set -euo pipefail
cd "$(dirname "$0")/.."

CAMPAIGN=campaigns/incast.toml
BASELINE=baselines/incast.json
GOLDENS=baselines/figures/incast
STORE=$(mktemp -d)
REPORT_OUT="${REPORT_OUT:-$STORE/report}"
trap 'rm -rf "$STORE"' EXIT

echo "==> build the lab CLI (profile lab: release + unwind)"
cargo build --quiet --profile lab --bin lab
LAB=target/lab/lab

echo "==> run the committed incast grid (fresh store)"
"$LAB" run "$CAMPAIGN" --store "$STORE/run" --quiet

echo "==> re-run: every point must be a cache hit"
"$LAB" run "$CAMPAIGN" --store "$STORE/run" --require-cached --quiet

echo "==> diff against the committed baseline (default tolerances)"
"$LAB" diff "$BASELINE" "$STORE/run/incast/table.json"

echo "==> baseline shows a deadline-miss delta between the DCTCP stacks"
sum_misses() {
    grep "\"$1/testbed16/incast[^\"]*cc:dctcp" "$BASELINE" \
        | sed -n 's/.*"deadline_misses":\([0-9]*\).*/\1/p' \
        | awk '{ s += $1 } END { print s + 0 }'
}
presto_miss=$(sum_misses presto)
ecmp_miss=$(sum_misses ecmp)
if [ "$presto_miss" = "$ecmp_miss" ]; then
    echo "FAIL: Presto*DCTCP ($presto_miss) and ECMP*DCTCP ($ecmp_miss)" \
         "miss counts are equal — the campaign no longer discriminates" >&2
    exit 1
fi
echo "    presto*dctcp=$presto_miss vs ecmp*dctcp=$ecmp_miss misses"

echo "==> render the report (diff vs committed baseline must pass)"
"$LAB" report incast --store "$STORE/run" --out "$REPORT_OUT" \
    --baseline "$BASELINE" --viewer

echo "==> figure artifacts must match the committed goldens byte-for-byte"
if ! diff -r "$GOLDENS" "$REPORT_OUT/figures"; then
    echo "FAIL: figure artifacts drifted from $GOLDENS" >&2
    echo "      (if the change is intended, re-bless per the header of $0)" >&2
    exit 1
fi
count=$(ls "$GOLDENS" | wc -l)
echo "    $count golden artifact(s) identical"

echo "==> report and viewer are single self-contained files"
for page in "$REPORT_OUT/index.html" "$REPORT_OUT/viewer.html"; do
    [ -s "$page" ] || { echo "FAIL: $page missing or empty" >&2; exit 1; }
    if grep -Eq 'src="http|href="http|<script src|<link rel="stylesheet" href' "$page"; then
        echo "FAIL: $page references external resources" >&2
        exit 1
    fi
done
echo "    no external references"

echo "incast smoke: OK (report at $REPORT_OUT)"
