//! `trace` — inspect telemetry traces, or generate one live.
//!
//! ```text
//! # Summarize an exported JSONL trace (as written by `lab run` into
//! # <store>/<campaign>/traces/, or by --write-jsonl below).
//! trace path/to/trace.jsonl
//!
//! # The same summary as one flat-JSON line, for scripts.
//! trace path/to/trace.jsonl --json
//!
//! # Demo mode: run the Fig 5 GRO comparison with telemetry attached and
//! # summarize both schemes; optionally export the Presto-side trace.
//! trace [--write-jsonl t.jsonl] [--write-chrome t.json]
//! ```
//!
//! All logic lives in [`presto::trace_tool`]; the `trace_inspect` example
//! is a thin wrapper over the same module.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match presto::trace_tool::TraceArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match presto::trace_tool::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace: {msg}");
            ExitCode::from(1)
        }
    }
}
