//! Sharded-engine smoke checker: one scenario, any shard count.
//!
//! Runs a paper-grid-style stride workload on a 3-tier fabric with the
//! requested event-queue shard count and prints a single machine-readable
//! line:
//!
//! ```text
//! digest=0x… events=… wall_ms=… events_per_sec=…
//! ```
//!
//! `ci/shard_smoke.sh` runs this at `--shards 1` and `--shards 8` and
//! diffs the digests — any divergence fails CI, enforcing the sharded
//! engine's byte-identical-replay contract end to end. The fabric shape
//! flags also let it drive the large-scale completion check (32 pods ×
//! 16 ToRs × 16 hosts = 8192 servers).

use std::process::ExitCode;
use std::time::Instant;

use presto::prelude::*;
use presto_testbed::stride_elephants;

const USAGE: &str = "usage: shard_check [--shards N] [--pods P] [--tors T] [--hosts H] \
     [--aggs A] [--flows F] [--stride K] [--duration-ms D] [--warmup-ms W] [--seed S]";

struct Opts {
    shards: usize,
    pods: usize,
    tors: usize,
    hosts: usize,
    aggs: usize,
    flows: usize,
    stride: usize,
    duration_ms: u64,
    warmup_ms: u64,
    seed: u64,
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        shards: 1,
        pods: 8,
        tors: 2,
        hosts: 4,
        aggs: 2,
        flows: 16,
        stride: 8,
        duration_ms: 20,
        warmup_ms: 5,
        seed: 1,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let val = |v: Option<&String>| -> Result<u64, String> {
            v.ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?
                .parse::<u64>()
                .map_err(|e| format!("{flag}: {e}\n{USAGE}"))
        };
        match flag.as_str() {
            "--shards" => o.shards = val(it.next())? as usize,
            "--pods" => o.pods = val(it.next())? as usize,
            "--tors" => o.tors = val(it.next())? as usize,
            "--hosts" => o.hosts = val(it.next())? as usize,
            "--aggs" => o.aggs = val(it.next())? as usize,
            "--flows" => o.flows = val(it.next())? as usize,
            "--stride" => o.stride = val(it.next())? as usize,
            "--duration-ms" => o.duration_ms = val(it.next())?,
            "--warmup-ms" => o.warmup_ms = val(it.next())?,
            "--seed" => o.seed = val(it.next())?,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let n = o.pods * o.tors * o.hosts;
    let mut flows = stride_elephants(n, o.stride);
    flows.truncate(o.flows);
    let scenario = Scenario::builder(SchemeSpec::presto(), o.seed)
        .three_tier(ThreeTierSpec {
            pods: o.pods,
            tors_per_pod: o.tors,
            hosts_per_tor: o.hosts,
            aggs_per_pod: o.aggs,
            ..Default::default()
        })
        .duration(SimDuration::from_millis(o.duration_ms))
        .warmup(SimDuration::from_millis(o.warmup_ms))
        .elephants(flows)
        .shards(o.shards)
        .name(format!("shard_check/sh{}", o.shards))
        .build();
    let start = Instant::now();
    let report = scenario.run();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let rate = if wall_ms > 0.0 {
        report.events_processed as f64 * 1e3 / wall_ms
    } else {
        0.0
    };
    println!(
        "digest={:#018x} events={} wall_ms={:.1} events_per_sec={:.0}",
        report.digest(),
        report.events_processed,
        wall_ms,
        rate
    );
    ExitCode::SUCCESS
}
