//! `lab` — run experiment campaigns, gate on regressions, render reports.
//!
//! ```text
//! lab run <campaign.toml> [--store DIR] [--workers N] [--no-traces]
//!         [--retry-failed] [--require-cached] [--quiet]
//!         [--inject-goodput-scale F]
//! lab ls  [CAMPAIGN] [--store DIR] [--sort label|wall|rate]
//! lab diff <baseline.json> <current.json>
//!         [--goodput-tol F] [--p99-fct-tol F] [--loss-tol F]
//!         [--deadline-tol F] [--wall-tol F] [--strict-digest]
//! lab report <campaign> [--store DIR] [--out DIR] [--baseline FILE]
//!         [--viewer] [--quiet]
//! lab schemes [--json]
//! ```
//!
//! `run` is resumable: every finished grid point is appended to the store
//! immediately, so interrupting a campaign (Ctrl-C) and re-running the
//! same command continues from the last completed point. A second run of
//! a completed campaign executes nothing and rewrites the identical
//! table. `diff` exits 1 when the current table regresses beyond the
//! tolerances, 2 on usage errors.
//!
//! `report` renders the committed store into the paper's figures
//! (`figures/*.svg` + canonical `figures/*.txt`, both byte-deterministic)
//! and a single-file `index.html`; `--viewer` adds a self-contained trace
//! timeline. With `--baseline`, the report embeds the diff verdict and
//! the command exits 1 on regressions, so CI can gate on it directly.
//!
//! Build with `cargo build --profile lab` (or any unwinding profile):
//! panic isolation — a crashing grid point becoming a `Failed` row
//! instead of killing the sweep — requires unwinding, which the plain
//! release profile disables.

use std::path::PathBuf;
use std::process::ExitCode;

use presto_lab::{
    diff_tables, read_table, sort_rows_for_ls, Campaign, LabRunner, LsSort, ResultsStore,
    RunOptions, Tolerances,
};
use presto_report::{write_report, ReportOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("ls") => cmd_ls(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("schemes") => cmd_schemes(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            return ExitCode::from(if args.is_empty() { 2 } else { 0 });
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("lab: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  lab run <campaign.toml> [--store DIR] [--workers N] [--no-traces]
          [--retry-failed] [--require-cached] [--quiet]
          [--inject-goodput-scale F]
  lab ls  [CAMPAIGN] [--store DIR] [--sort label|wall|rate]
  lab diff <baseline.json> <current.json>
          [--goodput-tol F] [--p99-fct-tol F] [--loss-tol F]
          [--deadline-tol F]
          [--wall-tol F] [--strict-digest]
  lab report <campaign> [--store DIR] [--out DIR] [--baseline FILE]
          [--viewer] [--quiet]
  lab schemes [--json]
";

/// Pull the value of `--flag VALUE` out of `args`, removing both tokens.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(format!("{flag} needs a value"));
            }
            args.remove(i);
            Ok(Some(args.remove(i)))
        }
    }
}

/// Pull a bare `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        None => false,
        Some(i) => {
            args.remove(i);
            true
        }
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse `{raw}`"))
}

/// One positional argument, after all flags were consumed.
fn positionals(args: Vec<String>, want: usize, what: &str) -> Result<Vec<String>, String> {
    if let Some(stray) = args.iter().find(|a| a.starts_with('-')) {
        return Err(format!("unknown flag `{stray}`\n{USAGE}"));
    }
    if args.len() != want {
        return Err(format!("expected {what}\n{USAGE}"));
    }
    Ok(args)
}

fn cmd_run(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = rest.to_vec();
    let store_dir = take_value(&mut args, "--store")?.unwrap_or_else(|| "lab-store".into());
    let mut opts = RunOptions {
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ..RunOptions::default()
    };
    if let Some(w) = take_value(&mut args, "--workers")? {
        opts.workers = parse_num("--workers", &w)?;
    }
    if let Some(s) = take_value(&mut args, "--inject-goodput-scale")? {
        opts.goodput_scale = parse_num("--inject-goodput-scale", &s)?;
    }
    opts.write_traces = !take_flag(&mut args, "--no-traces");
    opts.retry_failed = take_flag(&mut args, "--retry-failed");
    opts.require_cached = take_flag(&mut args, "--require-cached");
    let quiet = take_flag(&mut args, "--quiet");
    let path = positionals(args, 1, "one campaign file")?.remove(0);

    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let campaign = Campaign::from_toml(&text).map_err(|e| format!("{path}: {e}"))?;
    let store = ResultsStore::open(&store_dir)?;
    let mut runner = LabRunner::new(&store, opts);
    if !quiet {
        runner = runner.with_narrator(Box::new(|line: &str| println!("{line}")));
    }
    let outcome = runner.run(&campaign)?;
    Ok(if outcome.failed > 0 {
        eprintln!(
            "lab: campaign {} has {} failed point(s) — see {}",
            outcome.campaign,
            outcome.failed,
            outcome.table_json.display()
        );
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_ls(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = rest.to_vec();
    let store_dir = take_value(&mut args, "--store")?.unwrap_or_else(|| "lab-store".into());
    let sort = match take_value(&mut args, "--sort")? {
        None => LsSort::Label,
        Some(raw) => {
            LsSort::parse(&raw).ok_or_else(|| format!("--sort: `{raw}` (want label|wall|rate)"))?
        }
    };
    let mut args = positionals_up_to(args, 1, "at most one campaign name")?;
    let store = ResultsStore::open(&store_dir)?;

    // `lab ls <campaign>`: per-row listing with the stored events/s —
    // cached rows keep the rate they recorded when they actually ran.
    if let Some(name) = args.pop() {
        let mut rows: Vec<_> = store.load(&name)?.into_values().collect();
        if rows.is_empty() {
            println!("(no cached rows for {name})");
            return Ok(ExitCode::SUCCESS);
        }
        sort_rows_for_ls(&mut rows, sort);
        for r in &rows {
            let status = match r.status {
                presto_lab::RowStatus::Ok => "ok",
                presto_lab::RowStatus::Failed => "FAILED",
            };
            println!(
                "{:<52} {status:<6} {:>9.1} ms {:>10.0} events/s",
                r.label, r.wall_ms, r.events_per_sec
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    let mut campaigns: Vec<String> = std::fs::read_dir(store.root())
        .map_err(|e| format!("read {}: {e}", store.root().display()))?
        .filter_map(|entry| {
            let entry = entry.ok()?;
            let name = entry.file_name().into_string().ok()?;
            entry.path().join("results.jsonl").exists().then_some(name)
        })
        .collect();
    campaigns.sort();
    if campaigns.is_empty() {
        println!("(no campaigns in {})", store.root().display());
        return Ok(ExitCode::SUCCESS);
    }
    for name in campaigns {
        let rows = store.load(&name)?;
        let failed = rows
            .values()
            .filter(|r| r.status == presto_lab::RowStatus::Failed)
            .count();
        let wall_ms: f64 = rows.values().map(|r| r.wall_ms).sum();
        let events: u64 = rows.values().map(|r| r.events).sum();
        let rate = if wall_ms > 0.0 {
            events as f64 * 1e3 / wall_ms
        } else {
            0.0
        };
        let table = store.campaign_dir(&name).join("table.json");
        println!(
            "{name}: {} cached point(s), {failed} failed, {:.1} s wall, {:.0} events/s{}",
            rows.len(),
            wall_ms / 1e3,
            rate,
            if table.exists() {
                format!(", table {}", table.display())
            } else {
                String::new()
            }
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_report(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = rest.to_vec();
    let store_dir = take_value(&mut args, "--store")?.unwrap_or_else(|| "lab-store".into());
    let opts = ReportOptions {
        out_dir: take_value(&mut args, "--out")?.map(PathBuf::from),
        baseline: take_value(&mut args, "--baseline")?.map(PathBuf::from),
        viewer: take_flag(&mut args, "--viewer"),
    };
    let quiet = take_flag(&mut args, "--quiet");
    let campaign = positionals(args, 1, "one campaign name")?.remove(0);
    let store = ResultsStore::open(&store_dir)?;
    let out = write_report(&store, &campaign, &opts)?;
    if !quiet {
        for (slug, path) in &out.figures {
            println!("{slug}: {}", path.display());
        }
        println!("report: {}", out.index.display());
        if let Some(viewer) = &out.viewer {
            println!("viewer: {}", viewer.display());
        }
    }
    if let Some(diff) = &out.diff {
        if !quiet {
            print!("{}", diff.render());
        }
        if !diff.passed() {
            return Ok(ExitCode::from(1));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `lab schemes` — print the scheme registry, the arena's single
/// extension point, so docs can link here instead of hand-maintaining a
/// table. The canonical policy text is the exact string pinned by the
/// fingerprint contract (`PolicyKind::name`).
fn cmd_schemes(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = rest.to_vec();
    let json = take_flag(&mut args, "--json");
    positionals(args, 0, "no positional arguments for `schemes`")?;
    if json {
        let mut out = String::from("[");
        for (i, e) in presto_testbed::SCHEMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let spec = (e.build)();
            out.push_str("\n  {\"token\":");
            presto_telemetry::json::push_str_field(&mut out, e.token);
            out.push_str(",\"summary\":");
            presto_telemetry::json::push_str_field(&mut out, e.summary);
            out.push_str(",\"policy\":");
            presto_telemetry::json::push_str_field(&mut out, &spec.policy.name());
            out.push_str(",\"canon\":");
            presto_telemetry::json::push_str_field(&mut out, &presto_testbed::scheme_canon(&spec));
            out.push('}');
        }
        out.push_str("\n]\n");
        print!("{out}");
    } else {
        for e in presto_testbed::SCHEMES {
            let spec = (e.build)();
            println!("{:<20} {:<28} {}", e.token, spec.policy.name(), e.summary);
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Up to `max` positional arguments, after all flags were consumed.
fn positionals_up_to(args: Vec<String>, max: usize, what: &str) -> Result<Vec<String>, String> {
    if let Some(stray) = args.iter().find(|a| a.starts_with('-')) {
        return Err(format!("unknown flag `{stray}`\n{USAGE}"));
    }
    if args.len() > max {
        return Err(format!("expected {what}\n{USAGE}"));
    }
    Ok(args)
}

fn cmd_diff(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = rest.to_vec();
    let mut tol = Tolerances::default();
    if let Some(v) = take_value(&mut args, "--goodput-tol")? {
        tol.goodput_drop_rel = parse_num("--goodput-tol", &v)?;
    }
    if let Some(v) = take_value(&mut args, "--p99-fct-tol")? {
        tol.p99_fct_rise_rel = parse_num("--p99-fct-tol", &v)?;
    }
    if let Some(v) = take_value(&mut args, "--loss-tol")? {
        tol.loss_rise_abs = parse_num("--loss-tol", &v)?;
    }
    if let Some(v) = take_value(&mut args, "--wall-tol")? {
        tol.wall_rise_rel = parse_num("--wall-tol", &v)?;
    }
    if let Some(v) = take_value(&mut args, "--deadline-tol")? {
        tol.deadline_miss_rise_abs = parse_num("--deadline-tol", &v)?;
    }
    tol.strict_digest = take_flag(&mut args, "--strict-digest");
    let paths = positionals(args, 2, "<baseline.json> <current.json>")?;
    let baseline = read_table(&PathBuf::from(&paths[0]))?;
    let current = read_table(&PathBuf::from(&paths[1]))?;
    let report = diff_tables(&baseline, &current, &tol);
    print!("{}", report.render());
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
