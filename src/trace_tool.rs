//! The trace inspector behind `src/bin/trace.rs` (and the
//! `trace_inspect` example, which is a thin wrapper).
//!
//! Two modes:
//!
//! * **file mode** — summarize a previously exported telemetry JSONL
//!   trace, as text or (with `--json`) as one deterministic flat-JSON
//!   object for scripts;
//! * **demo mode** (no file) — run the Fig 5 GRO microbenchmark with
//!   telemetry attached and summarize both schemes, optionally exporting
//!   the Presto-side trace as JSONL and/or Chrome `trace_event` JSON.

use presto_telemetry::json::{push_f64, push_str_field};
use presto_telemetry::{FlushReason, TelemetryReport};
use presto_testbed::{Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

use presto_netsim::ClosSpec;
use presto_simcore::{SimDuration, SimTime};

/// Parsed command line of the trace tool.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct TraceArgs {
    /// Trace file to summarize; `None` selects demo mode.
    pub trace_file: Option<String>,
    /// Export the demo's Presto-side trace as JSONL here.
    pub write_jsonl: Option<String>,
    /// Export the demo's Presto-side trace as Chrome trace JSON here.
    pub write_chrome: Option<String>,
    /// Emit machine-readable JSON summaries instead of text.
    pub json: bool,
}

/// The usage string both binaries print.
pub const USAGE: &str =
    "usage: trace [TRACE.jsonl] [--json] [--write-jsonl PATH] [--write-chrome PATH]";

impl TraceArgs {
    /// Parse raw arguments (no `argv[0]`).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<TraceArgs, String> {
        let mut out = TraceArgs::default();
        let mut args = raw.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => out.json = true,
                "--write-jsonl" => {
                    out.write_jsonl = Some(args.next().ok_or("--write-jsonl needs a path")?);
                }
                "--write-chrome" => {
                    out.write_chrome = Some(args.next().ok_or("--write-chrome needs a path")?);
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                _ if a.starts_with('-') => return Err(format!("unknown flag `{a}`\n{USAGE}")),
                _ if out.trace_file.is_none() => out.trace_file = Some(a),
                _ => return Err(format!("unexpected argument `{a}`\n{USAGE}")),
            }
        }
        Ok(out)
    }
}

/// One deterministic flat-JSON summary line of a telemetry report: the
/// fields scripts grep a trace for, with fixed key order and
/// shortest-roundtrip floats (the conventions of the results store).
pub fn json_summary(rep: &TelemetryReport) -> String {
    let mut s = String::with_capacity(512);
    s.push_str("{\"scheme\":");
    push_str_field(&mut s, &rep.scheme);
    let split = rep.flush_split();
    s.push_str(&format!(
        ",\"events\":{},\"events_dropped\":{},\"queue_high_water\":{}",
        rep.events.len(),
        rep.events_dropped,
        rep.queue_high_water
    ));
    s.push_str(&format!(
        ",\"flush_loss\":{},\"flush_reordering\":{},\"flush_other\":{}",
        split.loss, split.reordering, split.other
    ));
    for r in FlushReason::ALL {
        let n = rep.flush_reasons[r.index()];
        if n > 0 {
            s.push_str(&format!(",\"flush_{}\":{n}", r.name()));
        }
    }
    s.push_str(",\"spray_counts\":[");
    for (i, n) in rep.spray_counts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&n.to_string());
    }
    s.push_str("],\"failover_stages\":[");
    for (i, st) in rep.failover_stages.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"name\":");
        push_str_field(&mut s, &st.name);
        s.push_str(&format!(
            ",\"start_ns\":{},\"end_ns\":{},\"goodput_gbps\":",
            st.start_ns, st.end_ns
        ));
        push_f64(&mut s, st.goodput_gbps);
        s.push_str(",\"loss_rate\":");
        push_f64(&mut s, st.loss_rate);
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Run the tool. Prints to stdout; returns an error message on failure
/// (the callers map it to exit code 1/2).
pub fn run(args: &TraceArgs) -> Result<(), String> {
    if let Some(path) = &args.trace_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let rep = TelemetryReport::from_jsonl(&text);
        if args.json {
            println!("{}", json_summary(&rep));
        } else {
            println!("{}", rep.summary());
        }
        return Ok(());
    }
    demo(args);
    Ok(())
}

/// Demo mode: the Fig 5 microbenchmark — two flows sprayed over two
/// spine paths — once with Presto's GRO and once with the stock Linux
/// engine, telemetry attached to both.
fn demo(args: &TraceArgs) {
    if !args.json {
        println!("trace demo — Fig 5 GRO comparison with telemetry attached\n");
    }
    for scheme in [
        SchemeSpec::presto(),
        SchemeSpec::from_token("presto-official-gro").unwrap(),
    ] {
        let sc = Scenario::builder(scheme, 1)
            .topology(ClosSpec {
                spines: 2,
                leaves: 2,
                hosts_per_leaf: 8,
                ..ClosSpec::default()
            })
            .duration(SimDuration::from_millis(40))
            .warmup(SimDuration::from_millis(10))
            .elephants(vec![
                FlowSpec::elephant(0, 8, SimTime::ZERO),
                FlowSpec::elephant(1, 9, SimTime::ZERO + SimDuration::from_micros(27)),
            ])
            .build();
        let (report, tel) = sc.run_traced();
        if args.json {
            println!("{}", json_summary(&tel));
        } else {
            println!(
                "=== {} (mean elephant tput {:.2} Gbps) ===",
                report.scheme,
                report.mean_elephant_tput()
            );
            println!("{}", tel.summary());
        }
        if report.scheme == SchemeSpec::presto().name {
            if let Some(path) = &args.write_jsonl {
                std::fs::write(path, tel.to_jsonl()).expect("write jsonl");
                if !args.json {
                    println!("wrote JSONL trace to {path}");
                }
            }
            if let Some(path) = &args.write_chrome {
                std::fs::write(path, tel.to_chrome_trace()).expect("write chrome trace");
                if !args.json {
                    println!("wrote chrome://tracing file to {path}");
                }
            }
        }
        if !args.json {
            println!();
        }
    }
    if !args.json {
        println!("Reading the flush-reason tables: under spraying, stock GRO ejects at");
        println!("every flowcell boundary (BoundaryEject — reordering), while Presto GRO");
        println!("absorbs those boundaries (BoundaryGapFilled) and reserves immediate");
        println!("pushes for in-flowcell gaps (InFlowcellGap — genuine loss).");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(raw: &[&str]) -> Result<TraceArgs, String> {
        TraceArgs::parse(raw.iter().map(|s| s.to_string()))
    }

    #[test]
    fn args_parse_modes_and_flags() {
        assert_eq!(to_args(&[]).unwrap(), TraceArgs::default());
        let a = to_args(&["t.jsonl", "--json"]).unwrap();
        assert_eq!(a.trace_file.as_deref(), Some("t.jsonl"));
        assert!(a.json);
        let a = to_args(&["--write-jsonl", "x", "--write-chrome", "y"]).unwrap();
        assert_eq!(a.write_jsonl.as_deref(), Some("x"));
        assert_eq!(a.write_chrome.as_deref(), Some("y"));
        assert!(to_args(&["--write-jsonl"]).is_err());
        assert!(to_args(&["--nope"]).is_err());
        assert!(to_args(&["a", "b"]).is_err());
    }

    #[test]
    fn json_summary_is_flat_deterministic_json() {
        let mut rep = TelemetryReport {
            scheme: "Presto".into(),
            ..TelemetryReport::default()
        };
        rep.flush_reasons[FlushReason::InFlowcellGap.index()] = 3;
        rep.flush_reasons[FlushReason::BoundaryGapFilled.index()] = 17;
        rep.spray_counts = vec![5, 7];
        let line = json_summary(&rep);
        assert!(line.starts_with("{\"scheme\":\"Presto\""));
        assert!(line.contains("\"flush_loss\":3"));
        assert!(line.contains("\"flush_reordering\":17"));
        assert!(line.contains("\"flush_InFlowcellGap\":3"));
        assert!(line.contains("\"spray_counts\":[5,7]"));
        assert!(line.ends_with("\"failover_stages\":[]}"));
        assert_eq!(line, json_summary(&rep));
        // Round-trips through the repo's own JSON field readers.
        assert_eq!(
            presto_telemetry::json::json_u64(&line, "flush_reordering"),
            Some(17)
        );
    }
}
