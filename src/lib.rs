//! # presto-lab
//!
//! A from-scratch Rust reproduction of **Presto: Edge-based Load Balancing
//! for Fast Datacenter Networks** (He, Rozner, Felter, Carter, Agarwal,
//! Akella — SIGCOMM 2015).
//!
//! Presto load-balances a datacenter fabric from the *soft edge*: the
//! sending vSwitch chops every flow into ≤64 KB **flowcells** and
//! round-robins them over controller-installed shadow-MAC spanning trees
//! (Algorithm 1), while a modified GRO engine at the receiver masks the
//! resulting reordering below TCP (Algorithm 2). No transport or switch
//! hardware changes required.
//!
//! The paper's physical testbed is replaced by a deterministic
//! packet-level simulator (see `DESIGN.md` for the substitution map).
//! This meta-crate re-exports every subsystem:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`simcore`] | `presto-simcore` | simulated time, event queue, EWMA, RNG |
//! | [`netsim`] | `presto-netsim` | switches, links, drop-tail queues, Clos topologies |
//! | [`endhost`] | `presto-endhost` | NIC (TSO/coalescing), CPU cost model, vSwitch |
//! | [`gro`] | `presto-gro` | stock GRO and Presto's Algorithm 2 |
//! | [`transport`] | `presto-transport` | TCP (CUBIC/Reno) and MPTCP |
//! | [`core`] | `presto-core` | flowcell scheduler, controller, shadow MACs |
//! | [`lb`] | `presto-lb` | ECMP / flowlet / per-packet / prequal baselines |
//! | [`probe`] | `presto-probe` | receiver-load signals, HCL hot/cold pool |
//! | [`workloads`] | `presto-workloads` | stride/shuffle/random/trace generators |
//! | [`metrics`] | `presto-metrics` | percentiles, CDFs, Jain fairness |
//! | [`telemetry`] | `presto-telemetry` | trace events, counter registries, exporters |
//! | [`testbed`] | `presto-testbed` | the composed simulator and scenarios |
//!
//! ## Quick start
//!
//! ```
//! use presto::prelude::*;
//!
//! let sc = Scenario::builder(SchemeSpec::presto(), 42)
//!     .duration(SimDuration::from_millis(30))
//!     .warmup(SimDuration::from_millis(10))
//!     .elephants(stride_elephants(16, 8))
//!     .build();
//! let report = sc.run();
//! assert!(report.mean_elephant_tput() > 8.0, "{}", report.mean_elephant_tput());
//! ```

pub use presto_core as core;
pub use presto_endhost as endhost;
pub use presto_faults as faults;
pub use presto_gro as gro;
pub use presto_lb as lb;
pub use presto_metrics as metrics;
pub use presto_netsim as netsim;
pub use presto_probe as probe;
pub use presto_simcore as simcore;
pub use presto_telemetry as telemetry;
pub use presto_testbed as testbed;
pub use presto_transport as transport;
pub use presto_workloads as workloads;

pub mod trace_tool;

/// Everything a typical experiment driver needs, importable in one line.
///
/// Covers scenario construction ([`ScenarioBuilder`](presto_testbed::ScenarioBuilder)
/// and the workload helpers), scheme selection, fault timelines, simulated
/// time, and the report types the paper's figures are read from.
pub mod prelude {
    pub use presto_faults::{FaultEvent, FaultKind, FaultPlan, FlapProcess, Notify};
    pub use presto_netsim::{ClosSpec, ThreeTierSpec, Topology, TopologyBuilder};
    pub use presto_probe::{HclPool, HostLoad, PoolClass, PoolStats, ProbeParams};
    pub use presto_simcore::{SimDuration, SimTime};
    pub use presto_telemetry::{FailoverStage, TelemetryConfig, TelemetryReport, TraceEvent};
    pub use presto_testbed::{
        bijection_elephants, random_elephants, stride_elephants, AllreduceSpec, FailureSpec,
        GroKind, IncastSpec, MiceSpec, ParallelRunner, PolicyKind, Report, Scenario,
        ScenarioBuilder, SchemeSpec, ShuffleSpec, Simulation, TransportKind, DEFAULT_ECN_THRESHOLD,
    };
    pub use presto_transport::CcKind;
}
