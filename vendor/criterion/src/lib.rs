//! API-compatible subset of the `criterion` benchmark harness.
//!
//! Implements the surface `crates/bench/benches/micro_hotpaths.rs` uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is
//! timed with calibrated inner loops over [`std::time::Instant`]; the
//! harness prints `[min median max]` ns/iter across the configured number
//! of samples, which is what the PR-level before/after numbers quote.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Calibration/warm-up budget before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `f`, storing per-iteration nanoseconds for each sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate: how many iterations fit in one sample?
        let warm_end = Instant::now() + self.warm_up_time;
        let mut warm_iters = 0u64;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            warm_iters += 1;
            if Instant::now() >= warm_end {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = s[0];
        let med = s[s.len() / 2];
        let max = s[s.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(med),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions under one entry point, with optional config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
    }
}
