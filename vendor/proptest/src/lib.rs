//! Deterministic, API-compatible subset of the `proptest` crate.
//!
//! Provides the surface this repository's property tests use: the
//! [`proptest!`] macro, strategies for integer ranges and
//! `prop::collection::vec`, and the `prop_assert*` macros. Values are
//! drawn from a splitmix64 stream seeded from the test's name, so every
//! run of a given test sees the same cases — matching the simulator's
//! own determinism-first philosophy. `PROPTEST_CASES` overrides the
//! per-test case count (default 64).

use std::ops::{Range, RangeInclusive};

/// Deterministic case-generation stream (splitmix64).
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Seed the stream from a test name, stably across runs and platforms.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRunner { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi]` (inclusive).
    pub fn below_incl(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// Number of cases each `proptest!` test runs.
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// A source of values for one `proptest!` parameter.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draw one value from the runner's stream.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                runner.below_incl(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.below_incl(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;
    fn sample(&self, runner: &mut TestRunner) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u64;
        self.start + (runner.next_u64() % span) as i64
    }
}

/// Strategy combinators over collections (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(elem, min..max)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = self.len.sample(runner);
            (0..n).map(|_| self.elem.sample(runner)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Assert inside a `proptest!` body; reports the failing condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that samples its arguments deterministically for
/// [`TestRunner::cases`] cases and runs the body on each.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::deterministic(stringify!($name));
            for case in 0..$crate::TestRunner::cases() {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut runner);)*
                let run = || -> () { $body };
                if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)).is_err() {
                    panic!(
                        "proptest case {case} failed{}",
                        [$((" with ", stringify!($arg), format!(" = {:?}", $arg))),*]
                            .iter()
                            .map(|(a, b, c)| format!("{a}{b}{c}"))
                            .collect::<String>()
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRunner;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3u64..9, b in 1u32..=4, c in 0usize..100) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!(c < 100);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(1u32..=10, 5..12)) {
            prop_assert!((5..12).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..=10).contains(&x)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRunner::deterministic("t");
        let mut b = TestRunner::deterministic("t");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
